"""Automated safety analysis (paper Sec. IV).

By Sobrinho's theorem (paper Thm. 4.1) a strictly monotonic algebra makes
any path-vector protocol converge.  :class:`SafetyAnalyzer` decides strict
monotonicity by compiling the algebra to integer constraints and invoking
the difference-logic solver:

* ``sat``   → the algebra is strictly monotonic → **provably safe**, with a
  concrete integer instantiation of the signatures (the paper's
  ``C=1, P=2, R=2``);
* ``unsat`` → not strictly monotonic → reported unsafe (a *sufficient*
  condition, so false positives are possible, paper Sec. IV-A), with a
  minimal unsatisfiable core mapped back to the policy entries.

Closed-form (infinite-Σ) algebras are discharged through their analytic
certificate, cross-checked on a finite sample.  Lexical products use the
composition rule of :mod:`repro.analysis.composition`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra.base import RoutingAlgebra, Signature
from ..algebra.product import LexicalProduct
from ..algebra.spp import SPPAlgebra, SPPInstance
from ..smt import Atom, DifferenceSolver
from .encoder import ConstraintSource, encode


@dataclass
class SafetyReport:
    """Outcome of analyzing one policy configuration.

    ``safe`` is the headline verdict (strict monotonicity established).
    ``monotonic`` is filled in when the analyzer also ran the non-strict
    check (always for unsafe verdicts — it distinguishes "merely lacks a
    tie-breaker" from "fundamentally cyclic").
    """

    algebra_name: str
    safe: bool
    method: str  # "smt" | "closed-form" | "composition"
    strictly_monotonic: bool
    monotonic: bool | None = None
    model: dict[Signature, int] = field(default_factory=dict)
    core: list[ConstraintSource] = field(default_factory=list)
    core_atoms: list[Atom] = field(default_factory=list)
    constraint_count: int = 0
    preference_count: int = 0
    monotonicity_count: int = 0
    detail: str = ""

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        verdict = "SAFE (strictly monotonic)" if self.safe else "NOT PROVED SAFE"
        lines = [f"{self.algebra_name}: {verdict} [{self.method}]"]
        if self.constraint_count:
            lines.append(
                f"  constraints: {self.constraint_count} "
                f"({self.preference_count} preference, "
                f"{self.monotonicity_count} monotonicity)")
        if self.safe and self.model:
            assignment = ", ".join(
                f"{sig}={val}" for sig, val in sorted(
                    self.model.items(), key=lambda kv: str(kv[0])))
            lines.append(f"  model: {assignment}")
        if not self.safe:
            if self.monotonic is not None:
                lines.append(f"  monotonic (non-strict): {self.monotonic}")
            if self.core:
                lines.append("  unsat core:")
                for source in self.core:
                    lines.append(f"    {source.origin or '?'}: {source}")
        if self.detail:
            lines.append(f"  note: {self.detail}")
        return "\n".join(lines)


class SafetyAnalyzer:
    """Front door of the analysis pipeline (Fig. 1, right-hand path)."""

    def __init__(self, solver: DifferenceSolver | None = None):
        self.solver = solver or DifferenceSolver()

    # -- public API ----------------------------------------------------------

    def analyze(self, policy: RoutingAlgebra | SPPInstance) -> SafetyReport:
        """Full analysis: strict check, plus mono check when strict fails."""
        algebra = self._as_algebra(policy)
        if isinstance(algebra, LexicalProduct):
            from .composition import analyze_product
            return analyze_product(algebra, self)
        if not algebra.is_finite:
            return self._analyze_closed_form(algebra)
        return self._analyze_finite(algebra)

    def check_strict(self, policy: RoutingAlgebra | SPPInstance) -> bool:
        """True iff the policy is strictly monotonic."""
        return self.analyze(policy).safe

    def check_monotone(self, policy: RoutingAlgebra | SPPInstance) -> bool:
        """True iff the policy is (at least non-strictly) monotonic."""
        algebra = self._as_algebra(policy)
        if isinstance(algebra, LexicalProduct):
            from .composition import analyze_product
            report = analyze_product(algebra, self)
            return bool(report.monotonic) or report.safe
        if not algebra.is_finite:
            certificate = algebra.closed_form_monotonicity
            if certificate is None:
                raise NotImplementedError(
                    f"{algebra.name}: infinite Σ and no certificate")
            return certificate.monotonic
        encoding = encode(algebra, strict=False)
        return self.solver.solve(encoding.system).is_sat

    def enumerate_cores(
        self, policy: RoutingAlgebra | SPPInstance, limit: int = 16
    ) -> list[list[ConstraintSource]]:
        """All disjoint conflicts — the paper's iterative repair workflow."""
        algebra = self._as_algebra(policy)
        encoding = encode(algebra, strict=True)
        cores = self.solver.all_cores(encoding.system, limit=limit)
        return [encoding.sources_for(core) for core in cores]

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _as_algebra(policy: RoutingAlgebra | SPPInstance) -> RoutingAlgebra:
        if isinstance(policy, SPPInstance):
            return SPPAlgebra(policy)
        return policy

    def _analyze_finite(self, algebra: RoutingAlgebra) -> SafetyReport:
        encoding = encode(algebra, strict=True)
        result = self.solver.solve(encoding.system)
        report = SafetyReport(
            algebra_name=algebra.name,
            safe=result.is_sat,
            method="smt",
            strictly_monotonic=result.is_sat,
            constraint_count=len(encoding.system),
            preference_count=encoding.preference_count,
            monotonicity_count=encoding.monotonicity_count,
        )
        if result.is_sat:
            report.model = encoding.model_signatures(result.model)
            report.monotonic = True
        else:
            report.core_atoms = result.core
            report.core = encoding.sources_for(result.core)
            mono_encoding = encode(algebra, strict=False)
            report.monotonic = self.solver.solve(mono_encoding.system).is_sat
        return report

    def _analyze_closed_form(self, algebra: RoutingAlgebra) -> SafetyReport:
        certificate = algebra.closed_form_monotonicity
        if certificate is None:
            raise NotImplementedError(
                f"{algebra.name}: infinite Σ requires a closed-form "
                "monotonicity certificate")
        self._spot_check_certificate(algebra, certificate.strictly_monotonic)
        return SafetyReport(
            algebra_name=algebra.name,
            safe=certificate.strictly_monotonic,
            method="closed-form",
            strictly_monotonic=certificate.strictly_monotonic,
            monotonic=certificate.monotonic,
            detail=certificate.justification,
        )

    def _spot_check_certificate(self, algebra: RoutingAlgebra,
                                claims_strict: bool) -> None:
        """Falsify a wrong certificate on a finite sample (defence in depth)."""
        from ..algebra.base import PHI, Pref

        for sig in algebra.sample_signatures(12):
            for label in algebra.labels():
                extended = algebra.oplus(label, sig)
                if extended is PHI:
                    continue
                pref = algebra.preference(sig, extended)
                if claims_strict and pref is not Pref.BETTER:
                    raise AssertionError(
                        f"{algebra.name}: certificate claims strict "
                        f"monotonicity but {label} (+) {sig} = {extended} "
                        f"is not strictly worse than {sig}")
                if pref is Pref.WORSE:
                    raise AssertionError(
                        f"{algebra.name}: certificate claims monotonicity "
                        f"but {label} (+) {sig} = {extended} is preferred "
                        f"to {sig}")
