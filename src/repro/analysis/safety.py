"""Automated safety analysis (paper Sec. IV).

By Sobrinho's theorem (paper Thm. 4.1) a strictly monotonic algebra makes
any path-vector protocol converge.  :class:`SafetyAnalyzer` is the front
door; the actual decision runs through the tiered
:class:`~repro.analysis.pipeline.AnalysisPipeline`:

* **tier 0** — closed-form certificates for infinite-Σ algebras
  (cross-checked on a finite sample) and the lexical-product composition
  rule of :mod:`repro.analysis.composition`;
* **tier 1** — dispute-digraph acyclicity, the solver-free fast path for
  SPP instances (verdict, layering model, and minimum-wheel unsat core
  all derived combinatorially);
* **tier 2** — the difference-logic solver over a persistent incremental
  constraint graph:

  * ``sat``   → strictly monotonic → **provably safe**, with a concrete
    integer instantiation of the signatures (the paper's ``C=1, P=2,
    R=2``);
  * ``unsat`` → not strictly monotonic → reported unsafe (a *sufficient*
    condition, so false positives are possible, paper Sec. IV-A), with a
    minimal unsatisfiable core mapped back to the policy entries.

Every report records which tier decided (``method`` / ``tier``) and what
each attempted stage cost (``stages``), surfaced by
``repro analyze --explain``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra.base import RoutingAlgebra, Signature
from ..algebra.spp import SPPAlgebra, SPPInstance
from ..smt import Atom, DifferenceSolver, SolverStats
from .encoder import ConstraintSource, encode
from .pipeline import AnalysisPipeline, AnalysisStage, StageTiming


@dataclass
class SafetyReport:
    """Outcome of analyzing one policy configuration.

    ``safe`` is the headline verdict (strict monotonicity established).
    ``monotonic`` is filled in when the analyzer also ran the non-strict
    check (always for unsafe verdicts — it distinguishes "merely lacks a
    tie-breaker" from "fundamentally cyclic").  ``method`` and ``tier``
    name the pipeline stage that decided; ``stages`` carries the
    per-stage timing provenance of the whole pipeline pass.
    """

    algebra_name: str
    safe: bool
    method: str  # "smt" | "closed-form" | "composition" | "dispute-digraph"
    strictly_monotonic: bool
    monotonic: bool | None = None
    model: dict[Signature, int] = field(default_factory=dict)
    core: list[ConstraintSource] = field(default_factory=list)
    core_atoms: list[Atom] = field(default_factory=list)
    constraint_count: int = 0
    preference_count: int = 0
    monotonicity_count: int = 0
    detail: str = ""
    #: Deciding pipeline tier (0 certificates, 1 dispute digraph, 2 SMT).
    tier: int | None = None
    #: Per-stage timing provenance, in pipeline order.
    stages: tuple[StageTiming, ...] = ()

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        verdict = "SAFE (strictly monotonic)" if self.safe else "NOT PROVED SAFE"
        lines = [f"{self.algebra_name}: {verdict} [{self.method}]"]
        if self.tier is not None:
            lines.append(f"  decided by: tier {self.tier} ({self.method})")
        if self.constraint_count:
            lines.append(
                f"  constraints: {self.constraint_count} "
                f"({self.preference_count} preference, "
                f"{self.monotonicity_count} monotonicity)")
        if self.safe and self.model:
            assignment = ", ".join(
                f"{sig}={val}" for sig, val in sorted(
                    self.model.items(), key=lambda kv: str(kv[0])))
            lines.append(f"  model: {assignment}")
        if not self.safe:
            if self.monotonic is not None:
                lines.append(f"  monotonic (non-strict): {self.monotonic}")
            if self.core:
                lines.append("  unsat core:")
                for source in self.core:
                    lines.append(f"    {source.origin or '?'}: {source}")
        if self.detail:
            lines.append(f"  note: {self.detail}")
        return "\n".join(lines)

    def explain(self) -> str:
        """Per-stage pipeline provenance (``repro analyze --explain``)."""
        lines = ["pipeline stages:"]
        for timing in self.stages:
            lines.append(f"  {timing.describe()}")
        if not self.stages:
            lines.append("  (no stage provenance recorded)")
        return "\n".join(lines)


class SafetyAnalyzer:
    """Front door of the analysis pipeline (Fig. 1, right-hand path)."""

    def __init__(self, solver: DifferenceSolver | None = None,
                 stages: list[AnalysisStage] | None = None):
        #: One-shot solver kept for core enumeration (the repair loop).
        self.solver = solver or DifferenceSolver()
        self.pipeline = AnalysisPipeline(self, stages=stages)

    # -- public API ----------------------------------------------------------

    def analyze(self, policy: RoutingAlgebra | SPPInstance) -> SafetyReport:
        """Full analysis: strict check, plus mono check when strict fails."""
        return self.pipeline.analyze(self._as_algebra(policy))

    def check_strict(self, policy: RoutingAlgebra | SPPInstance) -> bool:
        """True iff the policy is strictly monotonic."""
        return self.analyze(policy).safe

    def check_monotone(self, policy: RoutingAlgebra | SPPInstance) -> bool:
        """True iff the policy is (at least non-strictly) monotonic."""
        report = self.analyze(policy)
        return bool(report.monotonic) or report.safe

    def enumerate_cores(
        self, policy: RoutingAlgebra | SPPInstance, limit: int = 16
    ) -> list[list[ConstraintSource]]:
        """All disjoint conflicts — the paper's iterative repair workflow."""
        algebra = self._as_algebra(policy)
        encoding = encode(algebra, strict=True)
        cores = self.solver.all_cores(encoding.system, limit=limit)
        return [encoding.sources_for(core) for core in cores]

    def solver_stats(self) -> SolverStats:
        """Aggregate tier-2 statistics (``repro analyze --explain``)."""
        return self.pipeline.solver_stats()

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _as_algebra(policy: RoutingAlgebra | SPPInstance) -> RoutingAlgebra:
        if isinstance(policy, SPPInstance):
            return SPPAlgebra(policy)
        return policy


# Re-exported for stages and external callers that type against them.
__all__ = [
    "SafetyAnalyzer",
    "SafetyReport",
    "StageTiming",
]
