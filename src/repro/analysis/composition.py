"""Safety of lexical products (paper Sec. IV-B, "Policy compositions").

The decision rule, quoting the paper:

    Analysis starts from algebra A; if it is strictly monotonic, the
    composed policy is safe.  If A is monotonic, then B is checked.  If B is
    strictly monotonic, then the composed algebra is safe, otherwise it is
    deemed unsafe.  If A is not even monotonic, the composed policy is
    deemed unsafe.

This lets FSR certify e.g. Gao-Rexford guideline A (monotonic only) composed
with shortest hop-count (strictly monotonic) — the configuration used for
the Fig. 4 convergence experiment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..algebra.product import LexicalProduct
from ..algebra.secure import SecureAlgebra

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .safety import SafetyAnalyzer, SafetyReport


def analyze_product(product: LexicalProduct,
                    analyzer: "SafetyAnalyzer") -> "SafetyReport":
    """Apply the composition rule; returns a composite report."""
    from .safety import SafetyReport

    first_report = analyzer.analyze(product.first)
    if first_report.safe:
        return SafetyReport(
            algebra_name=product.name,
            safe=True,
            method="composition",
            strictly_monotonic=True,
            monotonic=True,
            detail=(f"component A ({product.first.name}) is strictly "
                    "monotonic, so the product is"),
        )

    first_monotonic = bool(first_report.monotonic)
    if not first_monotonic:
        return SafetyReport(
            algebra_name=product.name,
            safe=False,
            method="composition",
            strictly_monotonic=False,
            monotonic=False,
            core=first_report.core,
            core_atoms=first_report.core_atoms,
            detail=(f"component A ({product.first.name}) is not even "
                    "monotonic, so the product is deemed unsafe"),
        )

    second_report = analyzer.analyze(product.second)
    if second_report.safe:
        return SafetyReport(
            algebra_name=product.name,
            safe=True,
            method="composition",
            strictly_monotonic=True,
            monotonic=True,
            detail=(f"A ({product.first.name}) is monotonic and B "
                    f"({product.second.name}) is strictly monotonic, so "
                    "the lexical product is strictly monotonic"),
        )
    return SafetyReport(
        algebra_name=product.name,
        safe=False,
        method="composition",
        strictly_monotonic=False,
        monotonic=bool(second_report.monotonic),
        core=second_report.core,
        core_atoms=second_report.core_atoms,
        detail=(f"A ({product.first.name}) is only monotonic and B "
                f"({product.second.name}) is not strictly monotonic; the "
                "product is deemed unsafe"),
    )


def analyze_secure(secure: SecureAlgebra,
                   analyzer: "SafetyAnalyzer") -> "SafetyReport":
    """Secure-transformer composition rule: the wrapper inherits the base.

    Secured preference is lexicographic on ``(penalty, base)``, the
    penalty component is monotone non-decreasing under ⊕ (sticky) and the
    validation state never affects preference, so the wrapper is
    (strictly) monotonic exactly when the wrapped algebra is — recursing
    keeps analysis O(base) instead of enumerating the 6×-lifted Σ.
    """
    from .safety import SafetyReport

    base_report = analyzer.analyze(secure.base)
    return SafetyReport(
        algebra_name=secure.name,
        safe=base_report.safe,
        method="composition",
        strictly_monotonic=base_report.strictly_monotonic,
        monotonic=base_report.monotonic,
        core=base_report.core,
        core_atoms=base_report.core_atoms,
        detail=(f"secure transformer ({secure.variant}/{secure.mode}) "
                "adds a sticky lexicographic penalty, preserving the "
                f"wrapped algebra's verdict: {secure.base.name} is "
                + ("strictly monotonic"
                   if base_report.strictly_monotonic else
                   ("monotonic but not strict" if base_report.monotonic
                    else "not monotonic"))),
    )
