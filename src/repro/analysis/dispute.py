"""Dispute-digraph analysis of SPP instances (Griffin-Shepherd-Wilfong).

The paper's safety analysis reduces strict monotonicity to constraint
solving.  The classic combinatorial account of the same phenomenon is the
*dispute digraph* of GSW's Stable Paths Problem work (paper reference
[12]): a digraph over permitted paths with

* **transmission arcs** ``P -> (u,v)P`` — learning P at v lets u adopt its
  one-hop extension (the strict-monotonicity relation);
* **ranking arcs** ``Q -> R`` — node u strictly prefers Q to R, so
  adopting Q suppresses R (the per-node preference relation).

A cycle alternating through both relations is a dispute wheel; an acyclic
digraph guarantees safety.  This is precisely the constraint graph of the
SMT encoding (every arc is a strict ``<``), so acyclicity coincides with
satisfiability — a solver-free cross-check of the analyzer's verdict,
which the test suite exploits on the whole gadget zoo and on randomly
generated instances.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..algebra.base import MonoEntry, PrefStatement, Rel
from ..algebra.spp import Path, SPPInstance


@dataclass(frozen=True)
class Arc:
    """A digraph arc with its kind ('transmission' or 'ranking')."""

    src: Path
    dst: Path
    kind: str


@dataclass
class DisputeDigraph:
    """The dispute digraph of one SPP instance."""

    instance: SPPInstance
    arcs: list[Arc] = field(default_factory=list)
    adjacency: dict[Path, list[Arc]] = field(default_factory=dict)

    def successors(self, path: Path) -> list[Arc]:
        return self.adjacency.get(path, [])

    @property
    def transmission_arcs(self) -> list[Arc]:
        return [a for a in self.arcs if a.kind == "transmission"]

    @property
    def ranking_arcs(self) -> list[Arc]:
        return [a for a in self.arcs if a.kind == "ranking"]

    def find_cycle(self) -> list[Arc] | None:
        """A directed cycle, or None when the digraph is acyclic."""
        WHITE, GREY, BLACK = 0, 1, 2
        color: dict[Path, int] = {}
        stack_arcs: list[Arc] = []

        def dfs(path: Path) -> list[Arc] | None:
            color[path] = GREY
            for arc in self.successors(path):
                state = color.get(arc.dst, WHITE)
                if state == GREY:
                    # Unwind to the cycle start.
                    cycle = [arc]
                    for held in reversed(stack_arcs):
                        cycle.append(held)
                        if held.src == arc.dst:
                            break
                    cycle.reverse()
                    return cycle
                if state == WHITE:
                    stack_arcs.append(arc)
                    found = dfs(arc.dst)
                    stack_arcs.pop()
                    if found is not None:
                        return found
            color[path] = BLACK
            return None

        for path in self.instance.all_paths():
            if color.get(path, WHITE) == WHITE:
                found = dfs(path)
                if found is not None:
                    return found
        return None

    @property
    def is_acyclic(self) -> bool:
        return self.find_cycle() is None

    def find_min_cycle(self) -> list[Arc] | None:
        """A minimum-length directed cycle, or None when acyclic.

        A simple cycle's arcs are a *minimal* conflict (each arc is one
        strict constraint; dropping any arc leaves an acyclic — hence
        satisfiable — remainder), and a minimum-length cycle matches the
        smallest cores the solver reports, so the analysis fast path uses
        this as its solver-free unsat core.  Deterministic: starts are
        tried in :meth:`SPPInstance.all_paths` order, BFS explores arcs in
        insertion order, and only a strictly shorter cycle replaces the
        incumbent.
        """
        best: list[Arc] | None = None
        for start in self.instance.all_paths():
            prev: dict[Path, Arc] = {}
            seen = {start}
            queue = deque([start])
            closing: Arc | None = None
            while queue and closing is None:
                node = queue.popleft()
                for arc in self.successors(node):
                    if arc.dst == start:
                        closing = arc
                        break
                    if arc.dst not in seen:
                        seen.add(arc.dst)
                        prev[arc.dst] = arc
                        queue.append(arc.dst)
            if closing is None:
                continue
            cycle = [closing]
            cursor = closing.src
            while cursor != start:
                arc = prev[cursor]
                cycle.append(arc)
                cursor = arc.src
            cycle.reverse()
            if best is None or len(cycle) < len(best):
                best = cycle
        return best

    def layering_model(self) -> dict[Path, int]:
        """A concrete positive-integer model of an *acyclic* digraph.

        Every arc ``src -> dst`` stands for the strict constraint
        ``src < dst``, so on a DAG the longest-chain layering
        ``value(p) = 1 + max(value(pred))`` satisfies every constraint with
        the smallest possible integers — the combinatorial twin of the
        solver's shortest-path model (the paper's ``C=1, P=2, R=2``).
        Raises ``ValueError`` when the digraph is cyclic.
        """
        paths = self.instance.all_paths()
        incoming: dict[Path, list[Path]] = {}
        indegree = {path: 0 for path in paths}
        for arc in self.arcs:
            incoming.setdefault(arc.dst, []).append(arc.src)
            indegree[arc.dst] += 1
        ready = deque(path for path in paths if indegree[path] == 0)
        value: dict[Path, int] = {}
        while ready:
            path = ready.popleft()
            value[path] = 1 + max(
                (value[pred] for pred in incoming.get(path, [])), default=0)
            for arc in self.successors(path):
                indegree[arc.dst] -= 1
                if indegree[arc.dst] == 0:
                    ready.append(arc.dst)
        if len(value) != len(paths):
            raise ValueError("layering_model on a cyclic digraph")
        return value

    def describe_cycle(self) -> str | None:
        cycle = self.find_cycle()
        if cycle is None:
            return None
        lines = ["dispute cycle:"]
        for arc in cycle:
            lines.append(f"  {self.instance.path_name(arc.src)} "
                         f"--{arc.kind}--> "
                         f"{self.instance.path_name(arc.dst)}")
        return "\n".join(lines)


def build_dispute_digraph(instance: SPPInstance) -> DisputeDigraph:
    """Construct the dispute digraph of ``instance``."""
    instance.validate()
    digraph = DisputeDigraph(instance=instance)
    permitted_at = {node: list(paths)
                    for node, paths in instance.permitted.items()}

    def add(src: Path, dst: Path, kind: str) -> None:
        arc = Arc(src, dst, kind)
        digraph.arcs.append(arc)
        digraph.adjacency.setdefault(src, []).append(arc)

    for node, paths in permitted_at.items():
        # Ranking arcs: better -> worse along each node's ranked chain
        # (consecutive pairs generate the transitive relation).
        for better, worse in zip(paths, paths[1:]):
            add(better, worse, "ranking")
        # Transmission arcs: a permitted tail enables its extension.
        for extension in paths:
            if len(extension) < 3:
                continue
            tail = extension[1:]
            if instance.is_permitted(tail):
                add(tail, extension, "transmission")
    return digraph


def is_dispute_free(instance: SPPInstance) -> bool:
    """True iff the dispute digraph is acyclic (a safety guarantee)."""
    return build_dispute_digraph(instance).is_acyclic


def cycle_constraint_sources(instance: SPPInstance,
                             cycle: list[Arc]) -> list:
    """Map a dispute cycle back to the policy entries that induce it.

    Each arc corresponds 1:1 to a constraint of the SMT encoding — a
    ranking arc to the :class:`~repro.algebra.base.PrefStatement` of the
    consecutive ranked pair, a transmission arc to the
    :class:`~repro.algebra.base.MonoEntry` of the permitted extension —
    so a simple cycle renders exactly like a solver unsat core.  Sources
    are returned in the encoder's input order (ranking chains by node,
    then ⊕ entries by path order) to match solver-reported cores.
    """
    rankings = []
    monos = []
    for arc in cycle:
        if arc.kind == "ranking":
            node = arc.src[0]
            rankings.append(PrefStatement(
                arc.src, Rel.STRICT, arc.dst, origin=f"rank[{node}]"))
        else:
            extension = arc.dst
            label = ("l", extension[0], extension[1])
            monos.append(MonoEntry(
                label, arc.src, extension, origin=f"mono[{extension[0]}]"))
    rankings.sort(key=lambda s: (s.s1[0], instance.rank_of(s.s1)))
    path_order = {path: i for i, path in enumerate(instance.all_paths())}
    monos.sort(key=lambda e: path_order.get(e.result, len(path_order)))
    return rankings + monos
