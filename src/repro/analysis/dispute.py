"""Dispute-digraph analysis of SPP instances (Griffin-Shepherd-Wilfong).

The paper's safety analysis reduces strict monotonicity to constraint
solving.  The classic combinatorial account of the same phenomenon is the
*dispute digraph* of GSW's Stable Paths Problem work (paper reference
[12]): a digraph over permitted paths with

* **transmission arcs** ``P -> (u,v)P`` — learning P at v lets u adopt its
  one-hop extension (the strict-monotonicity relation);
* **ranking arcs** ``Q -> R`` — node u strictly prefers Q to R, so
  adopting Q suppresses R (the per-node preference relation).

A cycle alternating through both relations is a dispute wheel; an acyclic
digraph guarantees safety.  This is precisely the constraint graph of the
SMT encoding (every arc is a strict ``<``), so acyclicity coincides with
satisfiability — a solver-free cross-check of the analyzer's verdict,
which the test suite exploits on the whole gadget zoo and on randomly
generated instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra.spp import Path, SPPInstance


@dataclass(frozen=True)
class Arc:
    """A digraph arc with its kind ('transmission' or 'ranking')."""

    src: Path
    dst: Path
    kind: str


@dataclass
class DisputeDigraph:
    """The dispute digraph of one SPP instance."""

    instance: SPPInstance
    arcs: list[Arc] = field(default_factory=list)
    adjacency: dict[Path, list[Arc]] = field(default_factory=dict)

    def successors(self, path: Path) -> list[Arc]:
        return self.adjacency.get(path, [])

    @property
    def transmission_arcs(self) -> list[Arc]:
        return [a for a in self.arcs if a.kind == "transmission"]

    @property
    def ranking_arcs(self) -> list[Arc]:
        return [a for a in self.arcs if a.kind == "ranking"]

    def find_cycle(self) -> list[Arc] | None:
        """A directed cycle, or None when the digraph is acyclic."""
        WHITE, GREY, BLACK = 0, 1, 2
        color: dict[Path, int] = {}
        stack_arcs: list[Arc] = []

        def dfs(path: Path) -> list[Arc] | None:
            color[path] = GREY
            for arc in self.successors(path):
                state = color.get(arc.dst, WHITE)
                if state == GREY:
                    # Unwind to the cycle start.
                    cycle = [arc]
                    for held in reversed(stack_arcs):
                        cycle.append(held)
                        if held.src == arc.dst:
                            break
                    cycle.reverse()
                    return cycle
                if state == WHITE:
                    stack_arcs.append(arc)
                    found = dfs(arc.dst)
                    stack_arcs.pop()
                    if found is not None:
                        return found
            color[path] = BLACK
            return None

        for path in self.instance.all_paths():
            if color.get(path, WHITE) == WHITE:
                found = dfs(path)
                if found is not None:
                    return found
        return None

    @property
    def is_acyclic(self) -> bool:
        return self.find_cycle() is None

    def describe_cycle(self) -> str | None:
        cycle = self.find_cycle()
        if cycle is None:
            return None
        lines = ["dispute cycle:"]
        for arc in cycle:
            lines.append(f"  {self.instance.path_name(arc.src)} "
                         f"--{arc.kind}--> "
                         f"{self.instance.path_name(arc.dst)}")
        return "\n".join(lines)


def build_dispute_digraph(instance: SPPInstance) -> DisputeDigraph:
    """Construct the dispute digraph of ``instance``."""
    instance.validate()
    digraph = DisputeDigraph(instance=instance)
    permitted_at = {node: list(paths)
                    for node, paths in instance.permitted.items()}

    def add(src: Path, dst: Path, kind: str) -> None:
        arc = Arc(src, dst, kind)
        digraph.arcs.append(arc)
        digraph.adjacency.setdefault(src, []).append(arc)

    for node, paths in permitted_at.items():
        # Ranking arcs: better -> worse along each node's ranked chain
        # (consecutive pairs generate the transitive relation).
        for better, worse in zip(paths, paths[1:]):
            add(better, worse, "ranking")
        # Transmission arcs: a permitted tail enables its extension.
        for extension in paths:
            if len(extension) < 3:
                continue
            tail = extension[1:]
            if instance.is_permitted(tail):
                add(tail, extension, "transmission")
    return digraph


def is_dispute_free(instance: SPPInstance) -> bool:
    """True iff the dispute digraph is acyclic (a safety guarantee)."""
    return build_dispute_digraph(instance).is_acyclic
