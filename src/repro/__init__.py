"""repro — reproduction of FSR (Formally Safe Routing), SIGCOMM 2011.

FSR analyzes and implements inter-domain routing policies from a single
algebraic representation:

* :mod:`repro.algebra` — routing algebras, lexical products, policy library,
  SPP instances and BGP gadgets;
* :mod:`repro.smt` — integer difference-logic solver (Yices substitute);
* :mod:`repro.analysis` — safety analysis (strict monotonicity as constraint
  satisfaction, unsat-core pinpointing, composition rule);
* :mod:`repro.ndlog` — Network Datalog engine and algebra→NDlog codegen
  (RapidNet substitute);
* :mod:`repro.net` — discrete-event network simulator (ns-3 substitute);
* :mod:`repro.protocols` — GPV, plain path-vector, and HLP engines;
* :mod:`repro.topology` — CAIDA-like / Rocketfuel-like / iBGP / HLP topology
  generators;
* :mod:`repro.config` — router-configuration → algebra translation;
* :mod:`repro.experiments` — harnesses regenerating every table and figure;
* :mod:`repro.campaigns` — randomized scenario campaigns with parallel
  execution and a differential safety oracle (analysis vs execution).
"""

__version__ = "0.1.0"

__all__ = [
    "algebra",
    "analysis",
    "campaigns",
    "config",
    "experiments",
    "ndlog",
    "net",
    "protocols",
    "smt",
    "topology",
    "__version__",
]
