"""NDlog program texts: the GPV mechanism (paper Sec. V-A).

``GPV_PAPER`` is the four-rule program exactly as printed in the paper —
kept for reference and parser coverage.  ``GPV`` is the executable variant
actually deployed by FSR, differing only in the bookkeeping a running
implementation needs (RapidNet's real GPV carries the same):

* ``materialize`` declarations with the keys that give BGP's
  adjacency-RIB-in semantics — ``sig`` is keyed by (node, neighbor,
  destination) so a neighbor's fresh advertisement *replaces* its old one;
* an explicit destination column ``D`` threaded through (the paper's
  program stores it implicitly in the path via ``f_last``);
* ``f_combine`` folding the import filter, the ⊕P concatenation and the
  AS-path loop check into the received signature (φ when filtered), and
  ``f_exportSig`` folding the export filter *and* split-horizon (don't
  advertise a route to its own next hop) on the sending side — both
  produce φ, and a φ advertisement is exactly a BGP withdraw, replacing
  the stale route in the neighbor's adjacency RIB.  Without the φ flow a
  node whose best route now goes *through* a neighbor would leave its old
  advertisement dangling there, and DISAGREE would "converge" into a
  mutual forwarding loop.
"""

GPV_PAPER = """
gpvRecv sig(@U,SNew,PNew) :- msg(@U,V,D,S,P),
    PNew = f_concatPath(U,P), V = f_head(P),
    SNew = f_concatSig(L,S), label(@U,V,L),
    f_import(L,S) = true.

gpvStore route(@U,D,S,P) :- sig(@U,S,P), D = f_last(P).

gpvSelect localOpt(@U,D,a_pref<S>,P) :- route(@U,D,S,P).

gpvSend msg(@N,U,D,S,P) :- localOpt(@U,D,S,P),
    label(@U,N,L), f_export(L,S) = true.
"""

GPV = """
materialize(label, infinity, infinity, keys(1,2)).
materialize(sig, infinity, infinity, keys(1,2,3)).
materialize(localOpt, infinity, infinity, keys(1,2)).

gpvRecv sig(@U,V,D,SNew,PNew) :- msg(@U,V,D,S,P),
    label(@U,V,L),
    SNew := f_combine(L,S,P,U),
    PNew := f_concatPath(U,P).

gpvSelect localOpt(@U,D,a_pref<S>,P) :- sig(@U,V,D,S,P).

gpvSend msg(@N,U,D,SExp,P) :- localOpt(@U,D,S,P),
    label(@U,N,L),
    N != D,
    SExp := f_exportSig(L,S,P,N).
"""
