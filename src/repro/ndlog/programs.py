"""NDlog program texts: the GPV mechanism (paper Sec. V-A).

``GPV_PAPER`` is the four-rule program exactly as printed in the paper —
kept for reference and parser coverage.  ``GPV`` is the executable variant
actually deployed by FSR, differing only in the bookkeeping a running
implementation needs (RapidNet's real GPV carries the same):

* ``materialize`` declarations with the keys that give BGP's
  adjacency-RIB-in semantics — ``sig`` is keyed by (node, neighbor,
  destination) so a neighbor's fresh advertisement *replaces* its old one;
* an explicit destination column ``D`` threaded through (the paper's
  program stores it implicitly in the path via ``f_last``);
* ``f_combine`` folding the import filter, the ⊕P concatenation and the
  AS-path loop check into the received signature (φ when filtered), and
  ``f_exportSig`` folding the export filter *and* split-horizon (don't
  advertise a route to its own next hop) on the sending side — both
  produce φ, and a φ advertisement is exactly a BGP withdraw, replacing
  the stale route in the neighbor's adjacency RIB.  Without the φ flow a
  node whose best route now goes *through* a neighbor would leave its old
  advertisement dangling there, and DISAGREE would "converge" into a
  mutual forwarding loop.
"""

GPV_PAPER = """
gpvRecv sig(@U,SNew,PNew) :- msg(@U,V,D,S,P),
    PNew = f_concatPath(U,P), V = f_head(P),
    SNew = f_concatSig(L,S), label(@U,V,L),
    f_import(L,S) = true.

gpvStore route(@U,D,S,P) :- sig(@U,S,P), D = f_last(P).

gpvSelect localOpt(@U,D,a_pref<S>,P) :- route(@U,D,S,P).

gpvSend msg(@N,U,D,S,P) :- localOpt(@U,D,S,P),
    label(@U,N,L), f_export(L,S) = true.
"""

GPV = """
materialize(label, infinity, infinity, keys(1,2)).
materialize(sig, infinity, infinity, keys(1,2,3)).
materialize(localOpt, infinity, infinity, keys(1,2)).

gpvRecv sig(@U,V,D,SNew,PNew) :- msg(@U,V,D,S,P),
    label(@U,V,L),
    SNew := f_combine(L,S,P,U),
    PNew := f_concatPath(U,P).

gpvSelect localOpt(@U,D,a_pref<S>,P) :- sig(@U,V,D,S,P).

gpvSend msg(@N,U,D,SExp,P) :- localOpt(@U,D,S,P),
    label(@U,N,L),
    N != D,
    SExp := f_exportSig(L,S,P,N).
"""


def gpv_topk(k: int) -> str:
    """The multipath GPV variant: advertise the k-best set per neighbor
    (paper Sec. VI-D, "propagating the top-k paths instead of the current
    best path").

    Differences from the single-path program:

    * ``sig`` carries a trailing **rank column** ``K`` (part of the
      adjacency-RIB-in key): a neighbor's advertisement set occupies up to
      ``k`` per-rank slots, each replaced independently, with φ rows
      filling vacated slots (a per-rank withdraw);
    * route selection (``localOpt``) is unchanged — it aggregates over the
      whole ranked candidate pool;
    * the send side replaces ``gpvSend``-from-``localOpt`` with a *ranked
      aggregate*: ``advBest`` maintains, per (node, neighbor, destination),
      the k most preferred exportable routes — export filter and split
      horizon are applied per candidate *before* ranking (``f_exportSig``
      inside the aggregate body), matching the native engine's pool
      construction — and every rank-row delta ships as an ordinary
      message.
    """
    if k < 1:
        raise ValueError("top-k propagation needs k >= 1")
    return f"""
materialize(label, infinity, infinity, keys(1,2)).
materialize(sig, infinity, infinity, keys(1,2,3,6)).
materialize(localOpt, infinity, infinity, keys(1,2)).
materialize(advBest, infinity, infinity, keys(1,2,3,6)).

gpvRecv sig(@U,V,D,SNew,PNew,K) :- msg(@U,V,D,S,P,K),
    label(@U,V,L),
    SNew := f_combine(L,S,P,U),
    PNew := f_concatPath(U,P).

gpvSelect localOpt(@U,D,a_pref<S>,P) :- sig(@U,V,D,S,P,K).

gpvRank advBest(@U,N,D,a_top{k}<SExp>,P) :- sig(@U,V,D,S,P,K),
    label(@U,N,L),
    N != D,
    SExp := f_exportSig(L,S,P,N).

gpvSend msg(@N,U,D,S,P,K) :- advBest(@U,N,D,S,P,K).
"""
