"""Parser for the NDlog surface syntax used in the paper.

Grammar (informally)::

    program     := (materialize | rule)*
    materialize := "materialize" "(" ident "," ident "," ident ","
                   "keys" "(" int ("," int)* ")" ")" "."
    rule        := ident head ":-" body "."
    head        := atom
    body        := element ("," element)*
    element     := atom | assignment | condition
    atom        := ident "(" arg ("," arg)* ")"
    arg         := "@"? (var | const | aggregate)
    aggregate   := ident "<" var ">"
    assignment  := var ":=" expr        (also accepts "=" like the paper)
    condition   := expr op expr          op in == != < <= > >=
    expr        := var | const | ident "(" expr ("," expr)* ")"

Variables start with an upper-case letter; everything else lower-case is a
constant or function/relation name.  ``true``/``false``/``phi`` are literal
constants (φ maps to :data:`repro.algebra.base.PHI`).  Comments run from
``//`` to end of line.

The paper writes assignments with a bare ``=`` inside rule bodies (e.g.
``PNew=f_concatPath(U,P)``) and conditions as ``f_import(L,S)=true``; both
spellings are accepted — ``=`` resolves to an assignment when the left side
is a variable, and to an equality condition otherwise.
"""

from __future__ import annotations

import re
from typing import Iterator

from ..algebra.base import PHI
from .ast import (
    Aggregate,
    Assignment,
    Atom,
    Condition,
    Const,
    Expr,
    FuncCall,
    Materialize,
    Program,
    Rule,
    Var,
)


class NDlogSyntaxError(ValueError):
    """Raised on malformed NDlog source."""


_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<op>:-|:=|==|!=|<=|>=|<(?![A-Za-z])|>|=|@|\(|\)|,|\.)
  | (?P<num>\d+)
  | (?P<str>"[^"]*")
  | (?P<agg><)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
""", re.VERBOSE)

_LITERALS = {"true": True, "false": False, "phi": PHI, "nil": ()}


def _tokenize(source: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise NDlogSyntaxError(
                f"unexpected character {source[position]!r} at {position}")
        position = match.end()
        if match.lastgroup == "ws":
            continue
        tokens.append(match.group())
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[str]):
        self._tokens = tokens
        self._pos = 0

    def peek(self, offset: int = 0) -> str | None:
        index = self._pos + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise NDlogSyntaxError("unexpected end of input")
        self._pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise NDlogSyntaxError(f"expected {token!r}, got {got!r}")

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._tokens)


def parse_program(source: str, name: str = "ndlog",
                  strict: bool = True) -> Program:
    """Parse a full program.

    ``strict=True`` (default) runs :meth:`Program.validate`, which requires
    ``materialize`` declarations for stored relations.  Pass ``strict=False``
    for sketch programs like the paper's four-rule GPV listing, which omits
    declarations.
    """
    stream = _TokenStream(_tokenize(source))
    program = Program(name=name)
    while not stream.exhausted:
        if stream.peek() == "materialize":
            declaration = _parse_materialize(stream)
            program.materialized[declaration.relation] = declaration
        else:
            program.rules.append(_parse_rule(stream))
    if strict:
        program.validate()
    return program


def _parse_materialize(stream: _TokenStream) -> Materialize:
    stream.expect("materialize")
    stream.expect("(")
    relation = stream.next()
    # Two retention arguments (lifetime, size) — accepted and ignored, as in
    # the common "infinity, infinity" idiom.
    stream.expect(",")
    stream.next()
    stream.expect(",")
    stream.next()
    stream.expect(",")
    stream.expect("keys")
    stream.expect("(")
    keys = [int(stream.next()) - 1]  # surface syntax is 1-based
    while stream.peek() == ",":
        stream.next()
        keys.append(int(stream.next()) - 1)
    stream.expect(")")
    stream.expect(")")
    stream.expect(".")
    return Materialize(relation=relation, keys=tuple(keys))


def _parse_rule(stream: _TokenStream) -> Rule:
    rule_name = stream.next()
    if not rule_name[0].islower():
        raise NDlogSyntaxError(f"rule name must be lower-case: {rule_name!r}")
    head = _parse_atom(stream)
    stream.expect(":-")
    body: list = [_parse_body_element(stream)]
    while stream.peek() == ",":
        stream.next()
        body.append(_parse_body_element(stream))
    stream.expect(".")
    return Rule(name=rule_name, head=head, body=body)


def _parse_body_element(stream: _TokenStream):
    # Lookahead decides between atom, assignment, and condition.
    token = stream.peek()
    if token is None:
        raise NDlogSyntaxError("unexpected end of body")
    if _is_var(token):
        operator = stream.peek(1)
        if operator in (":=", "="):
            var = Var(stream.next())
            stream.next()  # operator
            expr = _parse_expr(stream)
            if operator == "=" and isinstance(expr, (Var, Const)):
                # Paper-style "=" between two bound things is a condition.
                return Condition(var, "==", expr)
            return Assignment(var, expr)
        if operator in ("==", "!=", "<", "<=", ">", ">="):
            lhs = Var(stream.next())
            op = stream.next()
            rhs = _parse_expr(stream)
            return Condition(lhs, op, rhs)
        raise NDlogSyntaxError(
            f"variable {token!r} must start an assignment or condition")
    # Identifier: atom or function-call condition.
    if _is_ident(token) and stream.peek(1) == "(":
        if stream.peek(2) == "@":
            return _parse_atom(stream)
        saved_pos = stream._pos
        call_or_atom = _parse_callable(stream)
        operator = stream.peek()
        if operator in ("==", "!=", "<", "<=", ">", ">=", "="):
            stream.next()
            rhs = _parse_expr(stream)
            op = "==" if operator == "=" else operator
            return Condition(call_or_atom, op, rhs)
        # It was a relation atom: re-parse with @ handling.
        stream._pos = saved_pos
        return _parse_atom(stream)
    raise NDlogSyntaxError(f"cannot parse body element at {token!r}")


def _parse_atom(stream: _TokenStream) -> Atom:
    relation = stream.next()
    if not _is_ident(relation):
        raise NDlogSyntaxError(f"bad relation name {relation!r}")
    stream.expect("(")
    args: list = []
    loc_index = 0
    index = 0
    while True:
        if stream.peek() == "@":
            stream.next()
            loc_index = index
        args.append(_parse_head_arg(stream))
        index += 1
        if stream.peek() == ",":
            stream.next()
            continue
        stream.expect(")")
        break
    return Atom(relation=relation, args=tuple(args), loc_index=loc_index)


def _parse_head_arg(stream: _TokenStream):
    token = stream.peek()
    if token is not None and _is_ident(token) and stream.peek(1) == "<":
        func = stream.next()
        stream.next()  # '<'
        var_token = stream.next()
        if not _is_var(var_token):
            raise NDlogSyntaxError(f"aggregate needs a variable: {var_token!r}")
        stream.expect(">")
        return Aggregate(func=func, var=Var(var_token))
    return _parse_expr(stream)


def _parse_callable(stream: _TokenStream) -> FuncCall:
    name = stream.next()
    stream.expect("(")
    args: list[Expr] = []
    if stream.peek() != ")":
        args.append(_parse_expr(stream))
        while stream.peek() == ",":
            stream.next()
            args.append(_parse_expr(stream))
    stream.expect(")")
    return FuncCall(name=name, args=tuple(args))


def _parse_expr(stream: _TokenStream) -> Expr:
    token = stream.peek()
    if token is None:
        raise NDlogSyntaxError("unexpected end of expression")
    if token.isdigit():
        stream.next()
        return Const(int(token))
    if token.startswith('"'):
        stream.next()
        return Const(token[1:-1])
    if _is_var(token):
        stream.next()
        return Var(token)
    if _is_ident(token):
        if stream.peek(1) == "(":
            return _parse_callable(stream)
        stream.next()
        if token in _LITERALS:
            return Const(_LITERALS[token])
        return Const(token)
    raise NDlogSyntaxError(f"cannot parse expression at {token!r}")


def _is_var(token: str) -> bool:
    return bool(token) and token[0].isupper()


def _is_ident(token: str) -> bool:
    return bool(re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token))


def parse_rules(source: str) -> Iterator[Rule]:
    """Convenience: parse a source with rules only."""
    return iter(parse_program(source).rules)
