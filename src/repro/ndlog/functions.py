"""Function registry for NDlog programs.

NDlog rule bodies call a fixed set of ``f_*`` helpers (paper Sec. V-A).
Built-ins cover list/path manipulation; policy functions (``f_pref``,
``f_concatSig``, ``f_import``, ``f_export`` — Table II of the paper) are
*generated from the input algebra* by :mod:`repro.ndlog.codegen` and
registered on top of the built-ins.

Paths are represented as tuples of node names ordered from the owning node
to the destination, so ``f_head(P)`` is the owning node and ``f_last(P)``
the destination.
"""

from __future__ import annotations

from typing import Any, Callable


class FunctionRegistry:
    """Named ``f_*`` functions available to a program's rules."""

    def __init__(self) -> None:
        self._functions: dict[str, Callable[..., Any]] = {}
        self.register_builtins()

    def register(self, name: str, fn: Callable[..., Any]) -> None:
        self._functions[name] = fn

    def call(self, name: str, *args: Any) -> Any:
        try:
            fn = self._functions[name]
        except KeyError:
            raise KeyError(f"undefined NDlog function {name!r}") from None
        return fn(*args)

    def has(self, name: str) -> bool:
        return name in self._functions

    # -- built-ins -----------------------------------------------------------

    def register_builtins(self) -> None:
        self.register("f_head", lambda path: path[0] if path else None)
        self.register("f_last", lambda path: path[-1] if path else None)
        self.register("f_nexthop",
                      lambda path: path[1] if len(path) > 1 else None)
        self.register("f_size", lambda path: len(path))
        self.register("f_contains", lambda path, node: node in path)
        self.register("f_concatPath", lambda node, path: (node,) + tuple(path))
        self.register("f_min", min)
        self.register("f_max", max)
        self.register("f_sum", lambda a, b: a + b)
