"""Distributed NDlog runtime (the reproduction's RapidNet).

Executes a parsed :class:`~repro.ndlog.ast.Program` on every node of a
:class:`~repro.net.network.Network`, transporting cross-node derivations as
simulator messages.  Semantics follow P2/RapidNet:

* **materialized relations** are keyed tables; inserting a row whose key
  exists *replaces* the old row and re-derives dependents (this
  update-in-place is what makes BAD GADGET oscillate observably);
* **event relations** (e.g. ``msg``) trigger rules but are never stored;
* rules are evaluated **delta-driven**: an arriving tuple is unified with
  each body occurrence of its relation, remaining atoms are joined against
  local tables, assignments/conditions run as they become ready;
* **aggregate rules** (``a_pref<S>``) maintain a best-row-per-group table,
  using the algebra-generated ``f_better`` comparator and keeping the
  current winner on ties (BGP's route-selection stickiness);
* **remote heads** (location ≠ local node) become messages, subject to the
  :class:`TransportPolicy`: per-destination coalescing under periodic
  batching (the paper's "batch and propagate routes every second"), RIB-out
  deduplication, and suppression of φ (withdraw) advertisements toward
  neighbors that never received the route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterator

from ..algebra.base import PHI, rank_routes
from ..net.simulator import Simulator, next_flush_time
from ..net.sizes import update_size
from .ast import (
    Aggregate,
    Assignment,
    Atom,
    Condition,
    Const,
    Expr,
    FuncCall,
    Program,
    Rule,
    Var,
)
from .functions import FunctionRegistry

Row = tuple


class NDlogRuntimeError(RuntimeError):
    """Raised on semantic errors during evaluation."""


@dataclass
class TransportPolicy:
    """How derived remote tuples become wire messages.

    ``dest_pos`` / ``sig_pos`` / ``path_pos`` identify the destination,
    signature and path columns of ``msg_relation`` (GPV: positions 2/3/4).
    ``rank_pos`` names the rank column of top-k programs: coalescing, the
    RIB-out and φ-suppression then operate per (destination, rank) slot,
    so a rank-1 advertisement never clobbers the pending rank-0 one.
    ``batch_interval`` enables periodic propagation: outgoing messages are
    buffered and flushed on the interval grid, coalescing to the latest
    advertisement per (neighbor, destination[, rank]).
    """

    msg_relation: str = "msg"
    dest_pos: int | None = None
    sig_pos: int | None = None
    path_pos: int | None = None
    rank_pos: int | None = None
    batch_interval: float | None = None
    default_size_bytes: int = 64

    def size_of(self, row: Row) -> int:
        if self.path_pos is not None:
            path = row[self.path_pos]
            if isinstance(path, tuple):
                return update_size(len(path))
        return self.default_size_bytes


class Table:
    """A keyed, materialized relation at one node."""

    def __init__(self, relation: str, keys: tuple[int, ...]):
        self.relation = relation
        self.keys = keys
        self._rows: dict[tuple, Row] = {}

    def key_of(self, row: Row) -> tuple:
        return tuple(row[i] for i in self.keys)

    def upsert(self, row: Row) -> tuple[bool, Row | None]:
        """Insert/replace; returns (changed, replaced_row)."""
        key = self.key_of(row)
        old = self._rows.get(key)
        if old == row:
            return False, None
        self._rows[key] = row
        return True, old

    def delete(self, row: Row) -> bool:
        """Silently remove a row (by key); True when something was removed."""
        return self._rows.pop(self.key_of(row), None) is not None

    def rows(self) -> Iterator[Row]:
        return iter(self._rows.values())

    def __len__(self) -> int:
        return len(self._rows)


class _NodeState:
    """Tables plus aggregate bookkeeping for one node."""

    def __init__(self, node: str, program: Program):
        self.node = node
        self.tables: dict[str, Table] = {
            decl.relation: Table(decl.relation, decl.keys)
            for decl in program.materialized.values()
        }
        #: RIB-out: (neighbor, relation, coalesce-key) -> last row sent.
        self.rib_out: dict[tuple, Row] = {}
        #: Pending batched messages: (neighbor, coalesce-key) -> row.
        self.out_buffer: dict[tuple, tuple[str, Row]] = {}
        #: Raw advertisements as received, pre-evaluation — kept so a label
        #: change can re-derive combined routes (the native engine's adj_in).
        self.adj_raw: dict[tuple, Row] = {}
        self.flush_scheduled = False


class NDlogRuntime:
    """One program running on every node of a network."""

    def __init__(self, program: Program, simulator: Simulator,
                 functions: FunctionRegistry,
                 transport: TransportPolicy | None = None):
        program.validate()
        self.program = program
        self.sim = simulator
        self.network = simulator.network
        self.functions = functions
        self.transport = transport or TransportPolicy()
        self._states = {node: _NodeState(node, program)
                        for node in self.network.nodes()}
        #: Relations whose change counts as a route change (best-row
        #: aggregate heads; ranked top-k tables shuffle without the best
        #: route moving, so they do not count).
        self._best_relations = {rule.head.relation for rule in program.rules
                                if rule.is_aggregate
                                and rule.ranked_k() is None}
        #: Called as ``observer(node, relation, row)`` after every *changed*
        #: materialized upsert (route logging, extraction, instrumentation).
        self.observers: list = []
        for node in self.network.nodes():
            self.sim.attach(node, self._make_handler(node))

    # -- setup ----------------------------------------------------------------

    def install_fact(self, node: str, relation: str, row: Row) -> None:
        """Silently preload a table row (static configuration, e.g. labels)."""
        table = self._table(node, relation)
        table.upsert(tuple(row))

    def inject(self, node: str, relation: str, row: Row,
               at: float = 0.0) -> None:
        """Schedule a tuple insertion that triggers rule evaluation."""
        self.sim.at(at, lambda: self._process_delta(node, relation, tuple(row)))

    def apply_delta(self, node: str, relation: str, row: Row) -> None:
        """Insert a tuple *now* and cascade its consequences immediately.

        This is the entry point for external topology events (session
        failures, label perturbations): the caller mutates tables through
        ordinary deltas so the change propagates via the normal rule and
        transport machinery.
        """
        self._process_delta(node, relation, tuple(row))

    def table_rows(self, node: str, relation: str) -> list[Row]:
        """Snapshot of a node's table (for tests and extraction)."""
        return list(self._table(node, relation).rows())

    def delete_facts(self, node: str, relation: str, predicate) -> list[Row]:
        """Silently remove matching rows (no rule evaluation is triggered).

        Used for facts that simply cease to exist — e.g. ``label`` rows of
        a failed BGP session, which must vanish *before* any delta runs so
        no rule derives a message across the dead link.
        """
        table = self._table(node, relation)
        removed = [row for row in table.rows() if predicate(row)]
        for row in removed:
            table.delete(row)
        return removed

    def drop_neighbor_state(self, node: str, neighbor: str) -> None:
        """Forget per-neighbor transport state after a session failure."""
        state = self._states[node]
        for key in [k for k in state.rib_out if k[0] == neighbor]:
            del state.rib_out[key]
        for key in [k for k in state.out_buffer if k[0] == neighbor]:
            del state.out_buffer[key]
        for key in [k for k in state.adj_raw if k[0] == neighbor]:
            del state.adj_raw[key]

    def raw_advertisements(self, node: str, src: str) -> list[Row]:
        """The latest raw message rows received from ``src`` (pre-⊕)."""
        state = self._states[node]
        return [row for (sender, _key), row in sorted(
            state.adj_raw.items(), key=lambda item: repr(item[0]))
            if sender == src]

    # -- message handling -------------------------------------------------------

    def _make_handler(self, node: str):
        def handler(src: str, payload: Any) -> None:
            relation, row = payload
            if not self.network.has_link(node, src):
                return  # session failed while the tuple was in flight
            if relation == self.transport.msg_relation:
                self._states[node].adj_raw[
                    (src, self._coalesce_key(src, row))] = row
            self._process_delta(node, relation, row)
        return handler

    # -- core delta processing ------------------------------------------------------

    def _process_delta(self, node: str, relation: str, row: Row) -> None:
        """Apply one tuple arrival and cascade all local consequences."""
        worklist: list[tuple[str, Row]] = [(relation, row)]
        state = self._states[node]
        while worklist:
            rel, tup = worklist.pop(0)
            if self.program.is_materialized(rel):
                changed, _old = state.tables[rel].upsert(tup)
                if not changed:
                    continue
                if rel in self._best_relations:
                    self.sim.stats.record_route_change(self.sim.now, node)
                for observer in self.observers:
                    observer(node, rel, tup)
            for rule, position in self.program.rules_triggered_by(rel):
                produced = self._dispatch_rule(node, rule, position, tup)
                for head_rel, head_row, target in produced:
                    if target == node:
                        worklist.append((head_rel, head_row))
                    else:
                        self._emit(node, target, head_rel, head_row)

    def _dispatch_rule(self, node: str, rule: Rule, position: int,
                       row: Row) -> list[tuple[str, Row, str]]:
        """Route one delta into the evaluation strategy the rule needs."""
        if rule.is_aggregate:
            k = rule.ranked_k()
            if k is not None:
                return self._maintain_topk(node, rule, position, row, k)
            return self._maintain_aggregate(node, rule, row)
        return self._fire_rule(node, rule, position, row)

    # -- rule evaluation ------------------------------------------------------------

    def _fire_rule(self, node: str, rule: Rule, delta_pos: int,
                   delta_row: Row) -> list[tuple[str, Row, str]]:
        delta_atom = rule.body[delta_pos]
        assert isinstance(delta_atom, Atom)
        seed = self._unify(delta_atom, delta_row, {})
        if seed is None:
            return []
        remaining = [el for i, el in enumerate(rule.body) if i != delta_pos]
        out: list[tuple[str, Row, str]] = []
        for bindings in self._join(node, remaining, seed):
            head_row = tuple(self._eval(arg, bindings) for arg in rule.head.args)
            target = head_row[rule.head.loc_index]
            out.append((rule.head.relation, head_row, target))
        return out

    def _join(self, node: str, elements: list, bindings: dict
              ) -> Iterator[dict]:
        """Evaluate remaining body elements, deferring not-yet-ready ones."""
        if not elements:
            yield bindings
            return
        # Pick the first ready element (atoms are always ready).
        for index, element in enumerate(elements):
            if isinstance(element, Atom):
                rest = elements[:index] + elements[index + 1:]
                table = self._states[node].tables.get(element.relation)
                if table is None:
                    raise NDlogRuntimeError(
                        f"{element.relation} is not materialized; event atoms "
                        "can only be the rule trigger")
                for row in list(table.rows()):
                    unified = self._unify(element, row, bindings)
                    if unified is not None:
                        yield from self._join(node, rest, unified)
                return
            if isinstance(element, Assignment):
                if self._ready(element.expr, bindings):
                    value = self._eval(element.expr, bindings)
                    existing = bindings.get(element.var.name, _UNSET)
                    if existing is not _UNSET and existing != value:
                        return
                    rest = elements[:index] + elements[index + 1:]
                    yield from self._join(
                        node, rest, {**bindings, element.var.name: value})
                    return
                continue  # defer until more atoms bind its inputs
            if isinstance(element, Condition):
                if (self._ready(element.lhs, bindings)
                        and self._ready(element.rhs, bindings)):
                    if self._check(element, bindings):
                        rest = elements[:index] + elements[index + 1:]
                        yield from self._join(node, rest, bindings)
                    return
                continue
        raise NDlogRuntimeError(
            f"body elements never became ready: {[str(e) for e in elements]}")

    def _unify(self, atom: Atom, row: Row, bindings: dict) -> dict | None:
        if len(row) != atom.arity:
            raise NDlogRuntimeError(
                f"{atom.relation}: arity mismatch {len(row)} vs {atom.arity}")
        new = dict(bindings)
        for arg, value in zip(atom.args, row):
            if isinstance(arg, Var):
                bound = new.get(arg.name, _UNSET)
                if bound is _UNSET:
                    new[arg.name] = value
                elif bound != value:
                    return None
            elif isinstance(arg, Const):
                if arg.value != value:
                    return None
            else:
                raise NDlogRuntimeError(
                    f"unsupported body-atom argument {arg}")
        return new

    def _ready(self, expr: Expr, bindings: dict) -> bool:
        if isinstance(expr, Var):
            return expr.name in bindings
        if isinstance(expr, FuncCall):
            return all(self._ready(a, bindings) for a in expr.args)
        return True

    def _eval(self, expr, bindings: dict):
        if isinstance(expr, Var):
            try:
                return bindings[expr.name]
            except KeyError:
                raise NDlogRuntimeError(f"unbound variable {expr.name}") from None
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, FuncCall):
            args = [self._eval(a, bindings) for a in expr.args]
            return self.functions.call(expr.name, *args)
        raise NDlogRuntimeError(f"cannot evaluate {expr!r}")

    def _check(self, condition: Condition, bindings: dict) -> bool:
        lhs = self._eval(condition.lhs, bindings)
        rhs = self._eval(condition.rhs, bindings)
        op = condition.op
        if op == "==":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        if op == "<":
            return lhs < rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">":
            return lhs > rhs
        if op == ">=":
            return lhs >= rhs
        raise NDlogRuntimeError(f"unknown operator {op}")

    # -- aggregates ---------------------------------------------------------------

    def _maintain_aggregate(self, node: str, rule: Rule,
                            delta_row: Row) -> list[tuple[str, Row, str]]:
        """Recompute the best row of the group the delta belongs to.

        The head's non-aggregate arguments *before* the aggregate position
        are the group keys (GPV: ``localOpt(@U, D, a_pref<S>, P)`` groups by
        ``(U, D)``); trailing arguments ride along with the winning row.
        Ties keep the currently selected row (BGP stickiness) so equal-cost
        re-advertisements do not cause phantom route changes.
        """
        body_atom = rule.body_atoms()[0]
        agg_index = rule.head.aggregate_index()
        assert agg_index is not None
        aggregate = rule.head.args[agg_index]
        assert isinstance(aggregate, Aggregate)

        bindings = self._unify(body_atom, delta_row, {})
        if bindings is None:
            return []
        group_exprs = [arg for i, arg in enumerate(rule.head.args)
                       if i < agg_index]
        group_key = tuple(self._eval(arg, bindings) for arg in group_exprs)

        # Scan the group's candidate rows.
        table = self._states[node].tables[body_atom.relation]
        best_bindings: dict | None = None
        for row in table.rows():
            row_bindings = self._unify(body_atom, row, {})
            if row_bindings is None:
                continue
            key = tuple(self._eval(arg, row_bindings) for arg in group_exprs)
            if key != group_key:
                continue
            if best_bindings is None or self._agg_better(
                    aggregate, row_bindings, best_bindings):
                best_bindings = row_bindings
        if best_bindings is None:
            return []

        head_table = self._states[node].tables.get(rule.head.relation)
        if head_table is None:
            raise NDlogRuntimeError(
                f"aggregate head {rule.head.relation} must be materialized")

        # Stickiness: keep the current winner unless strictly beaten.
        current = head_table._rows.get(group_key)
        candidate_row = self._head_row_from(rule, best_bindings, agg_index,
                                            aggregate)
        if current is not None and current != candidate_row:
            current_sig = current[agg_index]
            candidate_sig = candidate_row[agg_index]
            if (not self._compare(aggregate.func, candidate_sig, current_sig)
                    and self._current_still_valid(node, rule, current,
                                                  agg_index, aggregate)):
                return []
        changed, _old = head_table.upsert(candidate_row)
        if not changed:
            return []
        self.sim.stats.record_route_change(self.sim.now, node)
        for observer in self.observers:
            observer(node, rule.head.relation, candidate_row)
        out: list[tuple[str, Row, str]] = []
        # Cascade: the head delta feeds dependent rules directly here so the
        # caller only routes the produced tuples.
        for dependent, position in self.program.rules_triggered_by(
                rule.head.relation):
            out.extend(self._dispatch_rule(node, dependent, position,
                                           candidate_row))
        return out

    # -- ranked (top-k) aggregates --------------------------------------------------

    def _maintain_topk(self, node: str, rule: Rule, delta_pos: int,
                       delta_row: Row, k: int) -> list[tuple[str, Row, str]]:
        """Recompute the affected groups' k-best rank slots.

        The head's written arguments before the aggregate are the group
        keys (GPV multipath: ``advBest(@U,N,D,a_topK<SExp>,P)`` groups by
        ``(U, N, D)``); stored head rows carry the **rank appended as a
        trailing column** (part of the declared key).  Unlike ``a_pref``,
        the body may join several materialized atoms, so the delta only
        *localizes* the recomputation: the full body is re-joined seeded
        with whatever group variables the delta binds, and every group in
        the result is diffed slot-by-slot against the head table.  Slots
        beyond the surviving candidates are φ-filled — the per-rank
        withdraw downstream rules and the transport's φ-suppression expect.
        """
        delta_atom = rule.body[delta_pos]
        assert isinstance(delta_atom, Atom)
        delta_bindings = self._unify(delta_atom, delta_row, {})
        if delta_bindings is None:
            return []
        agg_index = rule.head.aggregate_index()
        assert agg_index is not None
        aggregate = rule.head.args[agg_index]
        assert isinstance(aggregate, Aggregate)
        group_exprs = list(rule.head.args[:agg_index])
        trailing_exprs = list(rule.head.args[agg_index + 1:])
        seed = {expr.name: delta_bindings[expr.name]
                for expr in group_exprs
                if isinstance(expr, Var) and expr.name in delta_bindings}

        groups: dict[tuple, list[tuple]] = {}
        for bindings in self._join(node, list(rule.body), dict(seed)):
            key = tuple(self._eval(arg, bindings) for arg in group_exprs)
            sig = self._eval(aggregate.var, bindings)
            trailing = tuple(self._eval(arg, bindings)
                             for arg in trailing_exprs)
            groups.setdefault(key, []).append((sig, trailing))

        head_table = self._states[node].tables.get(rule.head.relation)
        if head_table is None:
            raise NDlogRuntimeError(
                f"ranked aggregate head {rule.head.relation} must be "
                "materialized")
        out: list[tuple[str, Row, str]] = []
        for key, candidates in groups.items():
            ranked = self._rank_candidates(candidates)
            filler = tuple((key[rule.head.loc_index],)
                           for _ in trailing_exprs)
            for rank in range(k):
                sig, trailing = (ranked[rank] if rank < len(ranked)
                                 else (PHI, filler))
                row = (*key, sig, *trailing, rank)
                changed, _old = head_table.upsert(row)
                if not changed:
                    continue
                for observer in self.observers:
                    observer(node, rule.head.relation, row)
                for dependent, position in self.program.rules_triggered_by(
                        rule.head.relation):
                    out.extend(self._dispatch_rule(node, dependent, position,
                                                   row))
        return out

    def _rank_candidates(self, candidates: list[tuple]) -> list[tuple]:
        """Non-φ candidates best-first in the shared k-best order.

        Delegates to :func:`~repro.algebra.base.rank_routes` with the
        algebra-generated ``f_better`` comparator so the ranked aggregate,
        the native engine's RIB and the session snapshots cannot drift
        apart; the tie key generalizes the native (len(path), path) rule
        to the aggregate's trailing columns (one path column in GPV)."""
        def better(s1, s2) -> bool:
            return bool(self.functions.call("f_better", s1, s2))

        def tie_key(trailing: tuple) -> tuple:
            return tuple((len(value), value) if isinstance(value, tuple)
                         else (-1, value) for value in trailing)

        return rank_routes(better, candidates, tie_key=tie_key)

    def _head_row_from(self, rule: Rule, bindings: dict, agg_index: int,
                       aggregate: Aggregate) -> Row:
        values = []
        for i, arg in enumerate(rule.head.args):
            if i == agg_index:
                values.append(self._eval(aggregate.var, bindings))
            else:
                values.append(self._eval(arg, bindings))
        return tuple(values)

    def _agg_better(self, aggregate: Aggregate, challenger: dict,
                    incumbent: dict) -> bool:
        sig_new = self._eval(aggregate.var, challenger)
        sig_old = self._eval(aggregate.var, incumbent)
        return self._compare(aggregate.func, sig_new, sig_old)

    def _compare(self, func: str, v1, v2) -> bool:
        """Does ``v1`` beat ``v2`` under the aggregate ``func``?

        ``a_pref`` delegates to the algebra-generated ``f_better``
        comparator (paper Sec. V-A); ``a_min`` / ``a_max`` are numeric
        built-ins; any other name resolves to a registered
        ``<name>_better`` function.
        """
        if func == "a_pref":
            return bool(self.functions.call("f_better", v1, v2))
        if func == "a_min":
            return v1 < v2
        if func == "a_max":
            return v1 > v2
        comparator = f"{func}_better"
        if self.functions.has(comparator):
            return bool(self.functions.call(comparator, v1, v2))
        raise NDlogRuntimeError(f"unknown aggregate {func!r}")

    def _current_still_valid(self, node: str, rule: Rule, current: Row,
                             agg_index: int, aggregate: Aggregate) -> bool:
        """Is the currently selected row still present among candidates?"""
        body_atom = rule.body_atoms()[0]
        table = self._states[node].tables[body_atom.relation]
        group_exprs = [arg for i, arg in enumerate(rule.head.args)
                       if i < agg_index]
        for row in table.rows():
            row_bindings = self._unify(body_atom, row, {})
            if row_bindings is None:
                continue
            if self._head_row_from(rule, row_bindings, agg_index,
                                   aggregate) == current:
                return True
        return False

    # -- transport -----------------------------------------------------------------

    def _emit(self, node: str, target: str, relation: str, row: Row) -> None:
        """Ship a derived tuple to a neighbor, honoring the transport policy."""
        if not self.network.has_link(node, target):
            raise NDlogRuntimeError(
                f"{node} derived {relation} @ non-neighbor {target}")
        policy = self.transport
        if relation != policy.msg_relation:
            self.sim.send(node, target, (relation, row),
                          policy.default_size_bytes)
            return
        coalesce_key = self._coalesce_key(target, row)
        state = self._states[node]
        if self._suppress(state, target, relation, row, coalesce_key):
            return
        if policy.batch_interval is None:
            state.rib_out[(target, relation, coalesce_key)] = row
            self.sim.send(node, target, (relation, row), policy.size_of(row))
            return
        state.out_buffer[(target, coalesce_key)] = (relation, row)
        if not state.flush_scheduled:
            state.flush_scheduled = True
            self.sim.at(next_flush_time(node, self.sim.now,
                                        policy.batch_interval, self.sim.rng),
                        lambda: self._flush(node))

    def _coalesce_key(self, target: str, row: Row) -> Hashable:
        if self.transport.dest_pos is not None:
            key: Hashable = row[self.transport.dest_pos]
            if self.transport.rank_pos is not None:
                key = (key, row[self.transport.rank_pos])
            return key
        return row

    def _suppress(self, state: _NodeState, target: str, relation: str,
                  row: Row, coalesce_key: Hashable) -> bool:
        """RIB-out filtering: drop duplicate and pointless-φ advertisements.

        When batching, the *buffered* row for this coalescing slot is the
        effective last advertisement, not ``rib_out`` — judging against
        rib_out while a contradictory row waits in the buffer let a
        same-window withdraw be classified as noise and recorded, after
        which the buffered stale route flushed to the neighbor with no
        withdraw ever following (the source of stale top-k alternates
        under batching).
        """
        policy = self.transport
        rib_key = (target, relation, coalesce_key)
        pending = state.out_buffer.get((target, coalesce_key)) \
            if policy.batch_interval is not None else None
        last = pending[1] if pending is not None else state.rib_out.get(rib_key)
        if last == row:
            return True
        if policy.sig_pos is not None and row[policy.sig_pos] is PHI:
            if last is None or last[policy.sig_pos] is PHI:
                # The neighbor never held this route; a withdraw is noise.
                # rib_out bookkeeping belongs to send time: here when
                # unbatched, in _flush otherwise.
                if policy.batch_interval is None:
                    state.rib_out[rib_key] = row
                return True
        return False

    def _flush(self, node: str) -> None:
        """Send all buffered (coalesced) messages for one batching tick."""
        state = self._states[node]
        state.flush_scheduled = False
        pending = list(state.out_buffer.items())
        state.out_buffer.clear()
        sig_pos = self.transport.sig_pos
        for (target, coalesce_key), (relation, row) in pending:
            rib_key = (target, relation, coalesce_key)
            last = state.rib_out.get(rib_key)
            if last == row:
                continue
            state.rib_out[rib_key] = row
            if sig_pos is not None and row[sig_pos] is PHI and \
                    (last is None or last[sig_pos] is PHI):
                continue  # withdraw of a route the neighbor never heard
            self.sim.send(node, target, (relation, row),
                          self.transport.size_of(row))

    # -- helpers ---------------------------------------------------------------------

    def _table(self, node: str, relation: str) -> Table:
        try:
            return self._states[node].tables[relation]
        except KeyError:
            raise NDlogRuntimeError(
                f"{relation} is not a materialized relation") from None


_UNSET = object()
