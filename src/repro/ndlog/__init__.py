"""Network Datalog: language, runtime, and algebra→NDlog code generation.

* :mod:`repro.ndlog.ast` / :mod:`repro.ndlog.parser` — the NDlog language
  fragment FSR generates (location specifiers, keyed ``materialize``
  declarations, ``a_pref`` aggregates);
* :mod:`repro.ndlog.runtime` — delta-driven distributed evaluation over the
  simulator (the RapidNet stand-in);
* :mod:`repro.ndlog.programs` — the GPV mechanism text (paper Sec. V-A);
* :mod:`repro.ndlog.codegen` — the four-step algebra→NDlog translation
  (paper Sec. V-B) and one-call deployments.
"""

from .ast import (
    Aggregate,
    Assignment,
    Atom,
    Condition,
    Const,
    FuncCall,
    Materialize,
    Program,
    Rule,
    Var,
)
from .codegen import (
    deploy_gpv,
    deploy_spp,
    generated_source,
    label_facts,
    make_functions,
    network_from_spp,
    origination_facts,
)
from .functions import FunctionRegistry
from .parser import NDlogSyntaxError, parse_program
from .programs import GPV, GPV_PAPER
from .runtime import NDlogRuntime, NDlogRuntimeError, Table, TransportPolicy

__all__ = [
    "Aggregate",
    "Assignment",
    "Atom",
    "Condition",
    "Const",
    "FuncCall",
    "FunctionRegistry",
    "GPV",
    "GPV_PAPER",
    "Materialize",
    "NDlogRuntime",
    "NDlogRuntimeError",
    "NDlogSyntaxError",
    "Program",
    "Rule",
    "Table",
    "TransportPolicy",
    "Var",
    "deploy_gpv",
    "deploy_spp",
    "generated_source",
    "label_facts",
    "make_functions",
    "network_from_spp",
    "origination_facts",
    "parse_program",
]
