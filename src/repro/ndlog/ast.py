"""Abstract syntax for Network Datalog (NDlog) programs.

NDlog (paper Sec. V) is a distributed Datalog: every predicate's first
argument carries a *location specifier* (``@``), naming the node where the
tuple lives; rules whose head location differs from the body's location
compile into network messages.

The fragment implemented here is what FSR's generated programs (GPV and
friends) need, mirroring RapidNet/P2:

* ``materialize(rel, keys(i, j, ...))`` declarations — keyed tables where an
  insert with an existing key *replaces* the old row (this update-in-place
  is what lets oscillating configurations oscillate);
* event relations (un-materialized, e.g. ``msg``) that trigger rules but are
  never stored;
* body elements: relation atoms, assignments ``X := f_fn(...)``, and boolean
  conditions ``expr OP expr``;
* two aggregate forms in heads:

  - ``a_pref<S>`` — "pick the most preferred row per group", the
    route-selection step of GPV;
  - ``a_topK<S>`` (e.g. ``a_top3<S>``) — a *ranked* aggregate maintaining
    the K most preferred rows per group.  The head relation's stored rows
    carry one extra trailing **rank column** (0 = best) that does not
    appear among the head's written arguments; vacated rank slots are
    filled with φ rows so downstream rules observe withdrawals.  Ranked
    aggregates may join several (materialized) body atoms — the top-k
    send rule of the multipath GPV program ranks ``sig ⋈ label`` per
    neighbor.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Iterator, Union

#: Ranked-aggregate function names: ``a_top<K>`` with K >= 1.
_RANKED_AGGREGATE_RE = re.compile(r"a_top(\d+)")


def ranked_aggregate_k(func: str) -> int | None:
    """``K`` when ``func`` names a ranked aggregate (``a_topK``), else None."""
    match = _RANKED_AGGREGATE_RE.fullmatch(func)
    if match is None:
        return None
    k = int(match.group(1))
    if k < 1:
        raise ValueError(f"ranked aggregate {func!r} needs K >= 1")
    return k


@dataclass(frozen=True)
class Var:
    """A variable (capitalised identifier in the surface syntax)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A literal constant (number, string, ``true``/``false``, ``phi``)."""

    value: Any

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class FuncCall:
    """A call of a registered ``f_*`` function."""

    name: str
    args: tuple["Expr", ...]

    def __str__(self) -> str:
        inner = ",".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


Expr = Union[Var, Const, FuncCall]


@dataclass(frozen=True)
class Aggregate:
    """An aggregate head argument such as ``a_pref<S>``."""

    func: str
    var: Var

    def __str__(self) -> str:
        return f"{self.func}<{self.var}>"


@dataclass(frozen=True)
class Atom:
    """A predicate atom ``rel(@Loc, Arg, ...)``.

    ``loc_index`` is the position of the location-specified argument
    (always 0 in FSR's programs, kept general for clarity).
    """

    relation: str
    args: tuple[Union[Expr, Aggregate], ...]
    loc_index: int = 0

    @property
    def location(self) -> Union[Expr, Aggregate]:
        return self.args[self.loc_index]

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> Iterator[Var]:
        for arg in self.args:
            yield from _expr_vars(arg)

    def aggregate_index(self) -> int | None:
        """Position of the aggregate argument, or None."""
        for i, arg in enumerate(self.args):
            if isinstance(arg, Aggregate):
                return i
        return None

    def __str__(self) -> str:
        parts = []
        for i, arg in enumerate(self.args):
            prefix = "@" if i == self.loc_index else ""
            parts.append(f"{prefix}{arg}")
        return f"{self.relation}({','.join(parts)})"


@dataclass(frozen=True)
class Assignment:
    """``Var := expr`` — binds a fresh variable."""

    var: Var
    expr: Expr

    def __str__(self) -> str:
        return f"{self.var} := {self.expr}"


@dataclass(frozen=True)
class Condition:
    """``lhs OP rhs`` with OP in ``== != < <= > >=`` — filters bindings."""

    lhs: Expr
    op: str
    rhs: Expr

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs}"


BodyElement = Union[Atom, Assignment, Condition]


@dataclass
class Rule:
    """``name head :- body.``"""

    name: str
    head: Atom
    body: list[BodyElement] = field(default_factory=list)

    def body_atoms(self) -> list[Atom]:
        return [el for el in self.body if isinstance(el, Atom)]

    @property
    def is_aggregate(self) -> bool:
        return self.head.aggregate_index() is not None

    def ranked_k(self) -> int | None:
        """K of this rule's ranked aggregate (``a_topK``), or None."""
        index = self.head.aggregate_index()
        if index is None:
            return None
        aggregate = self.head.args[index]
        assert isinstance(aggregate, Aggregate)
        return ranked_aggregate_k(aggregate.func)

    def __str__(self) -> str:
        body = ", ".join(str(el) for el in self.body)
        return f"{self.name} {self.head} :- {body}."


@dataclass
class Materialize:
    """``materialize(rel, keys(...))`` — a keyed, stored relation."""

    relation: str
    keys: tuple[int, ...]  # 0-based argument positions forming the key

    def __str__(self) -> str:
        keys = ",".join(str(k + 1) for k in self.keys)
        return f"materialize({self.relation}, infinity, infinity, keys({keys}))."


@dataclass
class Program:
    """A parsed NDlog program: declarations plus rules."""

    name: str
    materialized: dict[str, Materialize] = field(default_factory=dict)
    rules: list[Rule] = field(default_factory=list)

    def is_materialized(self, relation: str) -> bool:
        return relation in self.materialized

    def rules_triggered_by(self, relation: str) -> list[tuple[Rule, int]]:
        """(rule, body-atom position) pairs whose body mentions ``relation``."""
        out = []
        for rule in self.rules:
            for position, element in enumerate(rule.body):
                if isinstance(element, Atom) and element.relation == relation:
                    out.append((rule, position))
        return out

    def validate(self) -> None:
        """Static checks: aggregates, event relations, location sanity."""
        for rule in self.rules:
            atoms = rule.body_atoms()
            if not atoms:
                raise ValueError(f"rule {rule.name}: no body atoms")
            if rule.is_aggregate:
                if rule.ranked_k() is not None:
                    # Ranked aggregates may join several atoms (the top-k
                    # send rule ranks sig ⋈ label per neighbor), but every
                    # one must be a stored table the maintenance can rescan.
                    unstored = [a.relation for a in atoms
                                if not self.is_materialized(a.relation)]
                    if unstored:
                        raise ValueError(
                            f"rule {rule.name}: ranked aggregate over "
                            f"event relations {unstored}")
                    if not self.is_materialized(rule.head.relation):
                        raise ValueError(
                            f"rule {rule.name}: ranked aggregate head "
                            f"{rule.head.relation} must be materialized")
                elif len(atoms) != 1:
                    raise ValueError(
                        f"rule {rule.name}: aggregate rules must have exactly "
                        "one body atom")
                elif not self.is_materialized(atoms[0].relation):
                    raise ValueError(
                        f"rule {rule.name}: aggregate over event relation "
                        f"{atoms[0].relation}")
            event_atoms = [a for a in atoms
                           if not self.is_materialized(a.relation)]
            if len(event_atoms) > 1:
                raise ValueError(
                    f"rule {rule.name}: more than one event atom "
                    f"({[a.relation for a in event_atoms]})")

    def __str__(self) -> str:
        lines = [str(m) for m in self.materialized.values()]
        lines += [str(r) for r in self.rules]
        return "\n".join(lines)


def _expr_vars(expr: Union[Expr, Aggregate]) -> Iterator[Var]:
    if isinstance(expr, Var):
        yield expr
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            yield from _expr_vars(arg)
    elif isinstance(expr, Aggregate):
        yield expr.var
