"""Algebra → NDlog code generation (paper Sec. V-B).

Implements the four-step translation:

* **Steps 1-3** — generate the policy functions of Table II from the input
  algebra: ``f_pref`` / ``f_better`` (⪯), ``f_concatSig`` (⊕P),
  ``f_import`` (⊕I), ``f_export`` (⊕E), plus the executable foldings
  ``f_combine`` and ``f_exportSig`` used by the deployed GPV program;
* **Step 4** — generate per-node configuration facts from the topology:
  a ``label`` tuple for every directed link and a ``sig`` tuple for every
  one-hop path to a destination (the origination set).

:func:`deploy_gpv` assembles the whole pipeline: parse the GPV program,
register the generated functions, install the facts, and return a ready
:class:`~repro.ndlog.runtime.NDlogRuntime`.  :func:`generated_source`
renders the functions as pseudo-code in the paper's ``#def_func`` style for
inspection and documentation.
"""

from __future__ import annotations

from typing import Iterable

from ..algebra.base import PHI, RoutingAlgebra
from ..algebra.extended import ExtendedAlgebra
from ..algebra.spp import SPPAlgebra, SPPInstance
from ..net.network import Network
from ..net.simulator import Simulator
from .functions import FunctionRegistry
from .parser import parse_program
from .programs import GPV, gpv_topk
from .runtime import NDlogRuntime, TransportPolicy


def make_functions(algebra: RoutingAlgebra) -> FunctionRegistry:
    """Steps 1-3: build the registry of algebra-derived functions."""
    registry = FunctionRegistry()

    def f_pref(s1, s2) -> bool:
        """⪯: is s1 weakly preferred to s2?"""
        from ..algebra.base import Pref
        return algebra.preference(s1, s2) in (Pref.BETTER, Pref.EQUAL)

    def f_better(s1, s2) -> bool:
        """≺: is s1 strictly preferred to s2 (comparator behind a_pref)?"""
        return algebra.better(s1, s2)

    def f_concat_sig(label, sig):
        """⊕P (falls back to the combined ⊕ for plain algebras)."""
        if isinstance(algebra, ExtendedAlgebra):
            return algebra.concat(label, sig)
        return algebra.oplus(label, sig)

    def f_import(label, sig) -> bool:
        """⊕I."""
        if isinstance(algebra, ExtendedAlgebra):
            return algebra.import_allows(label, sig)
        return True

    def f_export(label, sig) -> bool:
        """⊕E (indexed by the exporter's label toward the neighbor)."""
        if isinstance(algebra, ExtendedAlgebra):
            return algebra.export_allows(label, sig)
        return True

    def f_combine(label, sig, path, node):
        """Receive-side folding: loop check + import filter + ⊕P."""
        if sig is PHI:
            return PHI
        if node in path:
            return PHI
        if not f_import(label, sig):
            return PHI
        return f_concat_sig(label, sig)

    def f_export_sig(label, sig, path, neighbor):
        """Send-side folding: φ on export filter or split horizon.

        The φ advertisement acts as a withdraw at the receiving neighbor,
        so a neighbor that previously received this route learns it is
        gone (the RIB-out suppresses φ toward neighbors that never had it).
        """
        if sig is PHI:
            return PHI
        if len(path) > 1 and path[1] == neighbor:
            return PHI
        if not f_export(label, sig):
            return PHI
        return sig

    registry.register("f_pref", f_pref)
    registry.register("f_better", f_better)
    registry.register("f_concatSig", f_concat_sig)
    registry.register("f_import", f_import)
    registry.register("f_export", f_export)
    registry.register("f_combine", f_combine)
    registry.register("f_exportSig", f_export_sig)
    return registry


def label_facts(network: Network) -> Iterable[tuple[str, tuple]]:
    """Step 4a: one ``label(@u, v, L)`` fact per directed link."""
    for link in network.links():
        for u, v in ((link.a, link.b), (link.b, link.a)):
            label = link.labels.get((u, v))
            if label is not None:
                yield u, (u, v, label)


def origination_facts(network: Network, algebra: RoutingAlgebra,
                      destinations: Iterable[str]
                      ) -> Iterable[tuple[str, tuple]]:
    """Step 4b: a ``sig`` fact per one-hop path to each destination.

    The fact is ``sig(@u, u, d, s0, (u, d))`` — the neighbor column set to
    the node itself marks a locally originated route.
    """
    for dest in destinations:
        for neighbor in network.neighbors(dest):
            label = network.label(neighbor, dest)
            if label is None:
                continue
            try:
                sig = algebra.origin_signature(label)
            except (KeyError, NotImplementedError):
                continue
            if sig is PHI:
                continue
            yield neighbor, (neighbor, neighbor, dest, sig,
                             (neighbor, dest))


def deploy_gpv(network: Network, algebra: RoutingAlgebra,
               destinations: Iterable[str], *,
               seed: int = 0,
               batch_interval: float | None = None,
               simulator: Simulator | None = None,
               top_k: int = 1) -> NDlogRuntime:
    """Assemble a runnable GPV deployment (Fig. 1's left-hand path).

    Returns an :class:`NDlogRuntime` with origination facts injected at
    t=0; call ``runtime.sim.run()`` to execute.  Pass ``simulator`` to run
    on an externally owned event loop — e.g. one with a pre-scheduled
    failure/perturbation timeline shared with another backend — instead of
    a fresh internal one (``seed`` is ignored in that case: the external
    simulator already carries its own RNG).

    ``top_k > 1`` deploys the multipath variant
    (:func:`~repro.ndlog.programs.gpv_topk`): ``sig`` and the wire format
    gain a trailing rank column, originations occupy rank 0, and the send
    side advertises the k-best exportable set per neighbor through the
    ranked ``a_topK`` aggregate.
    """
    if top_k < 1:
        raise ValueError("top_k must be at least 1")
    if top_k == 1:
        program = parse_program(GPV, name="gpv")
        transport = TransportPolicy(msg_relation="msg", dest_pos=2,
                                    sig_pos=3, path_pos=4,
                                    batch_interval=batch_interval)
    else:
        program = parse_program(gpv_topk(top_k), name=f"gpv-top{top_k}")
        transport = TransportPolicy(msg_relation="msg", dest_pos=2,
                                    sig_pos=3, path_pos=4, rank_pos=5,
                                    batch_interval=batch_interval)
    if simulator is None:
        simulator = Simulator(network, seed=seed)
    elif simulator.network is not network:
        raise ValueError("the supplied simulator runs a different network")
    runtime = NDlogRuntime(program, simulator, make_functions(algebra),
                           transport)
    for node, row in label_facts(network):
        runtime.install_fact(node, "label", row)
    for node, row in origination_facts(network, algebra, destinations):
        if top_k > 1:
            row = row + (0,)  # originations are their own rank-0 slot
        runtime.inject(node, "sig", row, at=0.0)
    return runtime


def network_from_spp(instance: SPPInstance, **link_kwargs) -> Network:
    """Build the physical network of an SPP instance.

    Directed labels are the SPP algebra's per-link constants
    ``('l', u, v)``; link parameters default to the paper's 100 Mbps /
    10 ms.
    """
    network = Network(name=instance.name)
    for edge in sorted(instance.edges, key=sorted):
        u, v = sorted(edge)
        network.add_link(u, v, label_ab=("l", u, v), label_ba=("l", v, u),
                         **link_kwargs)
    return network


def deploy_spp(instance: SPPInstance, *, seed: int = 0,
               batch_interval: float | None = None,
               **link_kwargs) -> NDlogRuntime:
    """Deploy GPV for an SPP instance (gadget experiments, Sec. VI-C)."""
    network = network_from_spp(instance, **link_kwargs)
    algebra = SPPAlgebra(instance)
    return deploy_gpv(network, algebra, [instance.destination], seed=seed,
                      batch_interval=batch_interval)


def generated_source(algebra: RoutingAlgebra) -> str:
    """Render the generated functions in the paper's ``#def_func`` style.

    Only finite algebras can be rendered entry-by-entry; closed-form
    algebras are rendered as their Python expression.
    """
    lines: list[str] = [f"// functions generated from algebra {algebra.name}"]
    if not algebra.is_finite:
        lines.append("#def_func f_concatSig(L,S) { return L + S }")
        lines.append("#def_func f_pref(S1,S2) { return S1 <= S2 }")
        lines.append("#def_func f_import(L,S) { return true }")
        lines.append("#def_func f_export(L,S) { return true }")
        return "\n".join(lines)

    lines.append("#def_func f_concatSig(L,S) {")
    for label in algebra.labels():
        for sig in algebra.signatures() or []:
            if isinstance(algebra, ExtendedAlgebra):
                result = algebra.concat(label, sig)
            else:
                result = algebra.oplus(label, sig)
            if result is not PHI:
                lines.append(f"  if (L=={label!r}) && (S=={sig!r}) "
                             f"return {result!r}")
    lines.append("  return phi }")

    lines.append("#def_func f_pref(S1,S2) {")
    for statement in algebra.preference_statements():
        lines.append(f"  // {statement}")
    lines.append("  ... }")

    for op, name in (("import_allows", "f_import"),
                     ("export_allows", "f_export")):
        lines.append(f"#def_func {name}(L,S) {{")
        filtered = []
        if isinstance(algebra, ExtendedAlgebra):
            for label in algebra.labels():
                for sig in algebra.signatures() or []:
                    if not getattr(algebra, op)(label, sig):
                        filtered.append((label, sig))
        for label, sig in filtered:
            lines.append(f"  if (L=={label!r} && S=={sig!r}) return false")
        lines.append("  return true }")
    return "\n".join(lines)
