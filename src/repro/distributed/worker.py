"""The lease-driven campaign worker: one fleet member's whole lifecycle.

``repro campaign --coordinator PATH`` runs one of these.  The worker
carries **no campaign parameters of its own** — everything (seed, stream
length, families, backends, budgets) comes from the coordinator's
:class:`~repro.distributed.coordinator.CampaignPlan`, so any number of
workers started at any time (including after a crash, to resume) evaluate
the same deterministic stream.

The loop, per leased :class:`~repro.distributed.coordinator.WorkUnit`:

1. regenerate the unit's specs from the plan seed (``generator.make(i)``
   for ``i in [start, stop)`` — lease-driven consumption of the stream,
   replacing the old static ``--shard-index`` striding);
2. evaluate them chunk by chunk through the differential oracle, feeding
   a per-unit :class:`~repro.campaigns.sink.AggregatingSink`, the
   fleet-shared :class:`~repro.campaigns.sink.BusSink` (disagreements hit
   the bus the moment they are found), and any extra sink (``--stream-out``);
3. between chunks: heartbeat the lease (a ``False`` return means the
   lease was reclaimed — abandon the unit, its new owner recomputes the
   identical results) and poll the bus — a fleet-wide disagreement limit
   or budget exhaustion stops *every* worker within one chunk latency;
4. on unit completion, hand the partial report state to the coordinator
   (first completion wins).

The planted-disagreement drill: scenario ids listed in ``plan.planted``
have their results rewritten into synthetic ``safe-diverged``
disagreements after evaluation.  A fleet about to spend a week on a
million-scenario campaign can first prove, end to end, that a finding by
one worker actually stops all the others — the same way one tests a fire
alarm.
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import replace

from ..campaigns.oracle import (
    EvaluationOptions,
    configure_verdict_store,
    evaluate_chunk,
    flush_store_hits,
)
from ..campaigns.report import SAFE_DIVERGED, CampaignReport, ScenarioResult
from ..campaigns.sink import AggregatingSink, BusSink, ResultSink
from ..campaigns.spec import ScenarioGenerator
from ..exec import resolve_backends
from ..exec.batch import numpy_available
from ..obs import metrics as _obs_metrics
from ..obs.trace import TRACER, configure_tracing
from .bus import ABORT, DISAGREEMENT, METRICS
from .coordinator import ABORTED, CampaignCoordinator, WorkUnit

#: Fleet-wide bus notification latency (publish → first observation).
_BUS_LATENCY = _obs_metrics.histogram("repro_bus_latency_seconds")


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class DistributedWorker:
    """One fleet member: lease, evaluate, publish, repeat."""

    def __init__(self, coordinator: CampaignCoordinator | str, *,
                 worker_id: str | None = None,
                 sink: ResultSink | None = None,
                 max_units: int | None = None,
                 idle_wait_s: float | None = None):
        if isinstance(coordinator, str):
            coordinator = CampaignCoordinator.attach(coordinator)
        self.coordinator = coordinator
        self.plan = coordinator.plan()
        self.worker_id = worker_id or default_worker_id()
        self.extra_sink = sink
        #: Stop after this many units (tests simulate partial workers).
        self.max_units = max_units
        #: Wait between acquire attempts while other workers hold leases.
        self.idle_wait_s = (min(self.plan.lease_ttl_s / 4, 0.2)
                            if idle_wait_s is None else idle_wait_s)
        self.backends = resolve_backends(self.plan.backends)
        if getattr(self.plan, "auto_batch", True) \
                and "batch" not in self.backends and numpy_available():
            # Same augmentation the in-process runner applies: the plan's
            # scalar backends stay primary, batch rides along vectorized.
            self.backends = self.backends + ("batch",)
        self.aborted: str | None = None
        self.scenarios_done = 0
        self.units_done = 0
        self._bus_cursor = 0
        self._latency_samples: list[float] = []

    # -- public API ----------------------------------------------------------

    def run(self) -> CampaignReport:
        """Work until the stream is exhausted or the fleet stops; return
        the fleet's live-merged report (this worker's view of the whole
        campaign, not just its own slice)."""
        started = time.perf_counter()
        coordinator = self.coordinator
        options = EvaluationOptions(
            backends=self.backends,
            verdict_store_path=coordinator.verdict_cache_path,
            kernel_store_path=coordinator.kernel_cache_path,
            trace_dir=coordinator.trace_dir)
        configure_verdict_store(options.verdict_store_path)
        if options.trace_dir is not None:
            # Spans this worker emits carry its fleet identity, not the
            # default hostname-pid (they are the same process here, but
            # the lease ledger and the trace must agree on names).
            configure_tracing(options.trace_dir, worker=self.worker_id)
        bus_sink = BusSink(coordinator.bus, self.worker_id)
        # Latency samples must measure *notification* latency, so the
        # cursor starts at join time; abort decisions use the bus-wide
        # disagreement count and still see pre-join findings.
        self._bus_cursor = coordinator.bus.last_event_id()
        try:
            while True:
                self.aborted = self._fleet_stop()
                if self.aborted:
                    break
                if self.max_units is not None \
                        and self.units_done >= self.max_units:
                    break
                unit = coordinator.acquire(self.worker_id)
                if unit is None:
                    if coordinator.all_units_done():
                        break
                    time.sleep(self.idle_wait_s)  # stragglers hold leases
                    continue
                self._run_unit(unit, options, bus_sink)
        finally:
            flush_store_hits()
            self._publish_metrics()
            latency = (sum(self._latency_samples)
                       / len(self._latency_samples)
                       if self._latency_samples else None)
            coordinator.record_worker_exit(
                self.worker_id,
                wall_clock_s=time.perf_counter() - started,
                bus_latency_s=latency,
                aborted=self.aborted)
        return coordinator.merged_report()

    # -- one unit -------------------------------------------------------------

    def _run_unit(self, unit: WorkUnit, options: EvaluationOptions,
                  bus_sink: BusSink) -> None:
        # Every span a lease produces is stamped with the unit's identity
        # (the ambient scope), so a reclaimed unit's two attempts are
        # distinguishable inside the one merged per-scenario trace.
        with TRACER.ambient(unit_id=unit.unit_id, lease_worker=self.worker_id):
            with TRACER.span("unit:lease", start=unit.start, stop=unit.stop,
                             reclaimed=unit.reclaimed):
                self._run_unit_leased(unit, options, bus_sink)

    def _run_unit_leased(self, unit: WorkUnit, options: EvaluationOptions,
                         bus_sink: BusSink) -> None:
        plan = self.plan
        generator = ScenarioGenerator(plan.seed, families=plan.families,
                                      profile=plan.profile)
        unit_started = time.perf_counter()
        aggregator = AggregatingSink(keep_results=False,
                                     max_retained=plan.max_retained,
                                     backends=self.backends)
        for chunk_start in range(unit.start, unit.stop, plan.chunk_size):
            chunk_stop = min(chunk_start + plan.chunk_size, unit.stop)
            # Whole-chunk evaluation so the batch backend's kernel-keyed
            # vectorized pass amortizes inside the fleet exactly as it
            # does in the in-process runner.
            specs = list(generator.iter_range(chunk_start, chunk_stop))
            for result in evaluate_chunk(specs, options):
                result = self._plant(result)
                aggregator.accept(result)
                bus_sink.accept(result)
                if self.extra_sink is not None:
                    self.extra_sink.accept(result)
                self.scenarios_done += 1
            if not self.coordinator.heartbeat(
                    self.worker_id, unit.unit_id,
                    scenarios=chunk_stop - chunk_start):
                TRACER.annotate(abandoned="lease reclaimed")
                return  # lease reclaimed: the new owner re-derives the unit
            self.aborted = self._fleet_stop()
            if self.aborted:
                return  # abandoned unit; the campaign is over anyway
        report = aggregator.report(
            wall_clock_s=time.perf_counter() - unit_started,
            jobs=1, chunk_size=plan.chunk_size, aborted=None)
        if self.coordinator.complete(self.worker_id, unit.unit_id,
                                     report.to_state()):
            self.units_done += 1
            self._publish_metrics()

    def _publish_metrics(self) -> None:
        """Put this worker's cumulative registry snapshot on the bus; the
        coordinator merges the latest per worker into the fleet view."""
        try:
            self.coordinator.bus.publish(
                METRICS, self.worker_id,
                detail=f"units={self.units_done}",
                payload=_obs_metrics.snapshot())
        except OSError:
            pass  # telemetry must never kill a worker

    def _plant(self, result: ScenarioResult) -> ScenarioResult:
        """The fleet drill: rewrite a planted scenario into a synthetic
        disagreement so the abort path can be proven end to end."""
        if result.scenario_id not in self.plan.planted:
            return result
        return replace(
            result, classification=SAFE_DIVERGED, safe=True, converged=False,
            stop_reason="planted-disagreement",
            error="synthetic disagreement planted by the campaign plan "
                  "(fleet abort drill)")

    # -- fleet stop conditions ------------------------------------------------

    def _fleet_stop(self) -> str | None:
        """Poll the shared state: has anyone (including me) stopped the
        fleet?  Called between chunks, so any stop propagates to every
        worker within one chunk latency."""
        coordinator = self.coordinator
        self._poll_bus()
        state, detail = coordinator.campaign_state()
        if state == ABORTED:
            return detail or "fleet aborted"
        limit = self.plan.abort_on_disagreements
        if limit is not None:
            # Distinct scenarios, so a reclaimed lease re-publishing the
            # same finding cannot inflate the count toward the limit.
            found = coordinator.bus.disagreement_count()
            if found >= limit:
                reason = f"disagreement limit reached ({found}) fleet-wide"
                coordinator.abort(reason, self.worker_id)
                return reason
        if coordinator.exceeded_budget():
            reason = "wall-clock budget exhausted fleet-wide"
            coordinator.abort(reason, self.worker_id)
            return reason
        return None

    def _poll_bus(self) -> None:
        """Advance the cursor; sample notification latency on events other
        workers published (publish time → first observation here)."""
        now = time.time()
        for event in self.coordinator.bus.events_after(self._bus_cursor):
            self._bus_cursor = event.event_id
            if event.worker != self.worker_id \
                    and event.kind in (DISAGREEMENT, ABORT):
                sample = max(0.0, now - event.time)
                self._latency_samples.append(sample)
                _BUS_LATENCY.observe(sample)


def run_distributed_worker(directory: str, *,
                           worker_id: str | None = None,
                           sink: ResultSink | None = None) -> CampaignReport:
    """Convenience: attach to a campaign directory and work it to the end."""
    coordinator = CampaignCoordinator.attach(directory)
    try:
        return DistributedWorker(coordinator, worker_id=worker_id,
                                 sink=sink).run()
    finally:
        coordinator.close()
