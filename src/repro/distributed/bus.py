"""The shared disagreement bus: fleet-wide findings, within one chunk latency.

Sharded campaigns used to merge their reports only after every shard
finished, so a disagreement found by shard 0 in its first second could not
stop shards 1..N from burning the rest of their budget.  The
:class:`DisagreementBus` closes that gap with two files in the coordinator
directory, shared by every worker through the filesystem:

* ``bus.jsonl`` — the append-only payload log.  Every published event is
  one JSON line carrying the full record (for disagreements: the
  reproducer spec), written with a single ``os.write`` on an ``O_APPEND``
  descriptor so concurrent workers interleave *lines*, never bytes within
  a line.  An interrupted campaign therefore still leaves a complete,
  parseable record of everything the fleet found;
* ``bus.sqlite`` — the index: one small row per event (id, time, worker,
  kind, scenario), WAL-journaled with a busy timeout so N workers can
  poll between chunks for pennies.  The monotonically increasing
  ``event_id`` is each worker's poll cursor.

The protocol is deliberately one-way: publishers append, pollers read.
Nothing is ever mutated or deleted, so there is no lock ordering to get
wrong and a crashed publisher can at worst lose its own unpublished event
(its work unit's lease expires and the scenario is re-evaluated anyway).

Event kinds:

``disagreement``
    An oracle disagreement (or scenario error) the moment a worker's sink
    accepted it.  Workers poll the count between chunks, so a fleet-wide
    ``abort_on_disagreements`` limit takes effect within one chunk
    latency on every worker, not just the finder.
``abort``
    A worker decided the fleet must stop (limit reached, budget
    exhausted); carries the reason.
``note``
    Free-form breadcrumbs (used by tests and drills).
``metrics``
    A worker's ``repro-metrics/1`` registry snapshot (published at unit
    completion and worker exit).  The coordinator's
    ``fleet_metrics()`` merges the latest snapshot per worker into the
    fleet-wide view the watch dashboards and ``--format json`` serve.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass

from ..obs import metrics as _obs_metrics

#: Event kinds with protocol meaning (anything else is a note).
DISAGREEMENT = "disagreement"
ABORT = "abort"
NOTE = "note"
METRICS = "metrics"

_BUS_SCHEMA = """
CREATE TABLE IF NOT EXISTS bus_events (
    event_id    INTEGER PRIMARY KEY AUTOINCREMENT,
    time        REAL NOT NULL,
    worker      TEXT NOT NULL,
    kind        TEXT NOT NULL,
    scenario_id INTEGER,
    detail      TEXT NOT NULL DEFAULT ''
)
"""


@dataclass(frozen=True)
class BusEvent:
    """One indexed bus event (the payload lives in ``bus.jsonl``)."""

    event_id: int
    time: float
    worker: str
    kind: str
    scenario_id: int | None = None
    detail: str = ""


class DisagreementBus:
    """Append-only JSONL + sqlite index shared by every fleet worker."""

    JSONL_NAME = "bus.jsonl"
    INDEX_NAME = "bus.sqlite"

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.jsonl_path = os.path.join(directory, self.JSONL_NAME)
        self.index_path = os.path.join(directory, self.INDEX_NAME)
        self._conn = sqlite3.connect(self.index_path, timeout=30.0)
        try:  # WAL keeps pollers off the publishers' locks.
            self._conn.execute("PRAGMA journal_mode=WAL")
        except sqlite3.OperationalError:
            pass  # unsupported filesystem; the rollback journal still works
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.execute(_BUS_SCHEMA)
        self._conn.commit()

    # -- publishing -----------------------------------------------------------

    def publish(self, kind: str, worker: str, *,
                scenario_id: int | None = None,
                detail: str = "",
                payload: dict | None = None,
                now: float | None = None) -> BusEvent:
        """Durably record one event: payload line first, index row second.

        The order matters: the index row is the signal other workers poll
        for, so the payload must already be on disk when it appears.  The
        line is encoded once and written with a single ``os.write`` on an
        ``O_APPEND`` descriptor — concurrent publishers interleave whole
        lines.
        """
        stamp = time.time() if now is None else now
        record = {
            "time": stamp,
            "worker": worker,
            "kind": kind,
            "scenario_id": scenario_id,
            "detail": detail,
        }
        if payload is not None:
            record["payload"] = payload
        line = (json.dumps(record, default=repr) + "\n").encode("utf-8")
        fd = os.open(self.jsonl_path,
                     os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)
        cursor = self._conn.execute(
            "INSERT INTO bus_events (time, worker, kind, scenario_id, detail) "
            "VALUES (?, ?, ?, ?, ?)",
            (stamp, worker, kind, scenario_id, detail))
        self._conn.commit()
        _obs_metrics.counter("repro_bus_events_total", kind=kind).inc()
        return BusEvent(cursor.lastrowid, stamp, worker, kind,
                        scenario_id, detail)

    # -- polling --------------------------------------------------------------

    def events_after(self, event_id: int) -> list[BusEvent]:
        """Every indexed event newer than the caller's cursor, in order."""
        rows = self._conn.execute(
            "SELECT event_id, time, worker, kind, scenario_id, detail "
            "FROM bus_events WHERE event_id > ? ORDER BY event_id",
            (event_id,)).fetchall()
        return [BusEvent(*row) for row in rows]

    def count(self, kind: str | None = None) -> int:
        """Total indexed events, optionally of one kind."""
        if kind is None:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM bus_events").fetchone()
        else:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM bus_events WHERE kind = ?",
                (kind,)).fetchone()
        return row[0]

    def disagreement_count(self) -> int:
        """Distinct disagreeing *scenarios* — the fleet abort metric.

        Distinct, not raw rows: a reclaimed lease re-evaluates its unit
        deterministically, so the replacement worker re-publishes the
        same finding under the same scenario id.  Counting rows would let
        one disagreement trip a higher ``abort_on_disagreements`` limit
        (and inflate the merged report) after a lease churn.
        """
        row = self._conn.execute(
            "SELECT COUNT(DISTINCT COALESCE(scenario_id, -1 - event_id)) "
            "FROM bus_events WHERE kind = ?", (DISAGREEMENT,)).fetchone()
        return row[0]

    def last_event_id(self) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(MAX(event_id), 0) FROM bus_events").fetchone()
        return row[0]

    def abort_reason(self) -> str | None:
        """The first published fleet-abort reason, if any."""
        row = self._conn.execute(
            "SELECT detail FROM bus_events WHERE kind = ? "
            "ORDER BY event_id LIMIT 1", (ABORT,)).fetchone()
        return None if row is None else (row[0] or "fleet abort")

    # -- payload log ----------------------------------------------------------

    def read_payloads(self, kind: str | None = None) -> list[dict]:
        """Parse every JSONL payload record (optionally filtered by kind).

        Concurrent appends interleave whole lines, so this must parse
        cleanly even while the fleet is still publishing; a final partial
        line (a publisher killed mid-``write``, which a single
        ``os.write`` makes all but impossible on a local filesystem) is
        skipped rather than fatal.
        """
        if not os.path.exists(self.jsonl_path):
            return []
        records = []
        with open(self.jsonl_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn trailing line; never mid-file
                if kind is None or record.get("kind") == kind:
                    records.append(record)
        return records

    def latest_metrics_payloads(self) -> dict[str, dict]:
        """The newest ``metrics`` snapshot per worker.

        Workers publish cumulative registry snapshots, so merging the
        *latest* per worker (never summing successive ones) yields the
        fleet totals.
        """
        latest: dict[str, dict] = {}
        for record in self.read_payloads(METRICS):
            payload = record.get("payload")
            if isinstance(payload, dict):
                latest[record.get("worker", "?")] = payload
        return latest

    def close(self) -> None:
        self._conn.close()
