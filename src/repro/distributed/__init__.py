"""Distributed campaign control plane: one fleet from N shard processes.

Sharded campaigns used to be fire-and-forget: ``--shard-index/--shard-count``
strode a static stream and reports merged only after every shard finished.
This package turns independent worker processes into a *coordinated fleet*
over nothing but a shared directory (sqlite-WAL ledgers + an append-only
JSONL bus — no services, no new dependencies):

* :mod:`repro.distributed.coordinator` —
  :class:`~repro.distributed.coordinator.CampaignCoordinator`: the
  campaign plan plus leased work units with heartbeat expiry and
  re-issue, so a crashed or stalled worker's range is reclaimed instead
  of gating completion, and a re-run resumes from un-leased units;
* :mod:`repro.distributed.bus` —
  :class:`~repro.distributed.bus.DisagreementBus`: every oracle
  disagreement is published the moment it is found; workers poll between
  chunks, so fleet-wide early abort lands within one chunk latency;
* :mod:`repro.distributed.worker` —
  :class:`~repro.distributed.worker.DistributedWorker`: the lease →
  evaluate → publish → heartbeat loop behind
  ``repro campaign --coordinator PATH``.

See ``src/repro/campaigns/README.md`` for the architecture and failure
model.
"""

from .bus import ABORT, DISAGREEMENT, NOTE, BusEvent, DisagreementBus
from .coordinator import (
    ABORTED,
    DONE,
    FINISHED,
    LEASED,
    PENDING,
    RUNNING,
    CampaignCoordinator,
    CampaignPlan,
    FleetStatus,
    WorkUnit,
)
from .worker import DistributedWorker, default_worker_id, run_distributed_worker

__all__ = [
    "ABORT",
    "ABORTED",
    "BusEvent",
    "CampaignCoordinator",
    "CampaignPlan",
    "DISAGREEMENT",
    "DONE",
    "DisagreementBus",
    "DistributedWorker",
    "FINISHED",
    "FleetStatus",
    "LEASED",
    "NOTE",
    "PENDING",
    "RUNNING",
    "WorkUnit",
    "default_worker_id",
    "run_distributed_worker",
]
