"""Campaign coordinator: leased work units over a shared sqlite ledger.

A distributed campaign is a *directory* initialized once with a
:class:`CampaignPlan` and then attached by any number of worker
processes.  The design relies on sqlite WAL locking and atomic
``O_APPEND`` line writes, which hold on a local filesystem shared by
processes of **one host**; network filesystems (NFS and friends) break
both guarantees — fanning out across hosts needs the object-store bus
backend on the ROADMAP, not a network mount.

.. code-block:: text

    campaign-dir/
      coordinator.sqlite   the ledger: plan, work units, workers
      bus.jsonl            append-only disagreement payloads
      bus.sqlite           bus index (poll cursors)
      verdicts.sqlite      shared write-through verdict cache (optional)

The deterministic spec stream ``ScenarioGenerator(seed).make(i)`` for
``i in [0, scenarios)`` is partitioned up front into contiguous
:class:`WorkUnit` ranges.  Workers *lease* units instead of striding the
stream statically:

* :meth:`acquire` hands out the lowest pending unit — or the lowest unit
  whose lease has **expired** (its worker crashed or stalled), so a dead
  worker's range is reclaimed instead of gating completion;
* :meth:`heartbeat` extends the lease between chunks; a ``False`` return
  tells a straggler its lease was reclaimed and its unit now belongs to
  someone else — it abandons the unit rather than racing the new owner;
* :meth:`complete` records the unit's partial
  :class:`~repro.campaigns.report.CampaignReport` state.  Completion is
  first-wins: a reclaimed unit finished by both the straggler and the new
  owner counts **once** (evaluation is deterministic, so both computed
  identical results — the duplicate is simply discarded), which is what
  makes the fleet's merged report equal a single-process run even through
  crashes and re-issues.

All ledger mutations are single ``BEGIN IMMEDIATE`` transactions with a
busy timeout, so any number of workers on one filesystem coordinate
safely; nothing in the protocol needs a network service.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass, field, replace

from ..obs import metrics as _obs_metrics
from .bus import ABORT, DisagreementBus

COORDINATOR_DB = "coordinator.sqlite"
SHARED_VERDICTS = "verdicts.sqlite"
SHARED_KERNELS = "kernels.sqlite"
TRACE_DIR = "traces"

#: Lease-protocol telemetry (acquisitions, crash reclaims, completions,
#: first-wins duplicate discards).
_LEASES = {
    kind: _obs_metrics.counter("repro_fleet_leases_total", kind=kind)
    for kind in ("acquired", "reclaimed", "completed", "duplicate")
}

_SCHEMA = """
CREATE TABLE IF NOT EXISTS plan (
    id     INTEGER PRIMARY KEY CHECK (id = 1),
    body   TEXT NOT NULL,
    created_at REAL NOT NULL,
    status TEXT NOT NULL DEFAULT 'running',
    status_detail TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS units (
    unit_id   INTEGER PRIMARY KEY,
    start     INTEGER NOT NULL,
    stop      INTEGER NOT NULL,
    state     TEXT NOT NULL DEFAULT 'pending',
    worker    TEXT,
    lease_expires_at REAL,
    attempts  INTEGER NOT NULL DEFAULT 0,
    reclaims  INTEGER NOT NULL DEFAULT 0,
    report    TEXT,
    completed_at REAL,
    completed_by TEXT
);
CREATE TABLE IF NOT EXISTS workers (
    worker        TEXT PRIMARY KEY,
    registered_at REAL NOT NULL,
    last_seen     REAL NOT NULL,
    scenarios_done INTEGER NOT NULL DEFAULT 0,
    units_done    INTEGER NOT NULL DEFAULT 0,
    wall_clock_s  REAL NOT NULL DEFAULT 0.0,
    bus_latency_s REAL,
    aborted       TEXT
);
"""

#: Unit states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"

#: Campaign states.
RUNNING = "running"
ABORTED = "aborted"
FINISHED = "done"


@dataclass(frozen=True)
class CampaignPlan:
    """Everything a worker needs to regenerate and evaluate its leases.

    The plan lives in the coordinator, not on worker command lines:
    ``repro campaign --coordinator PATH`` needs only the path, so every
    worker — including one started days later to resume a crashed
    campaign — evaluates exactly the same deterministic spec stream.
    """

    scenarios: int
    seed: int = 0
    families: tuple[str, ...] | None = None
    profile: str = "default"
    backends: tuple[str, ...] = ("gpv",)
    #: Scenario indices per leased work unit.
    unit_size: int = 25
    #: Scenarios per in-worker chunk (heartbeat / bus-poll granularity).
    chunk_size: int = 8
    #: Seconds a silent worker keeps its lease before re-issue.
    lease_ttl_s: float = 60.0
    abort_on_disagreements: int | None = 1
    wall_clock_budget_s: float | None = None
    #: Scenario ids rewritten into synthetic disagreements — the fleet
    #: drill that proves the abort path end to end before a real campaign
    #: depends on it (and what the CI smoke job plants).
    planted: tuple[int, ...] = ()
    #: Feed one shared write-through verdict store instead of per-worker
    #: memos (``verdicts.sqlite`` in the campaign directory).
    shared_verdicts: bool = True
    #: Workers auto-append the vectorized ``batch`` backend (and share one
    #: ``kernels.sqlite`` tabulated-kernel cache in the campaign directory
    #: when ``shared_verdicts`` allows shared files at all).
    auto_batch: bool = True
    max_retained: int = 200
    #: Structured tracing: workers emit ``repro-span/1`` JSONL into the
    #: campaign directory's ``traces/`` sink (per-worker files, so no
    #: shared-file gate applies).
    trace: bool = False
    created_at: float = 0.0

    def __post_init__(self):
        if self.scenarios < 1:
            raise ValueError("scenarios must be >= 1")
        if self.unit_size < 1:
            raise ValueError("unit_size must be >= 1")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be > 0")
        bad_plants = [i for i in self.planted
                      if not 0 <= i < self.scenarios]
        if bad_plants:
            # A drill that plants outside the stream never fires and
            # reads as a vacuous "abort path works" pass.
            raise ValueError(
                f"planted scenario ids {bad_plants} outside the stream "
                f"[0, {self.scenarios})")
        if self.abort_on_disagreements is not None \
                and self.abort_on_disagreements < 1:
            # Unlike the in-process runner (which evaluates a scenario
            # before its first limit check), fleet workers check *before*
            # acquiring — a limit of 0 would abort every worker at start
            # and evaluate nothing.  Use None to disable the limit.
            raise ValueError(
                "abort_on_disagreements must be >= 1, or None to disable")

    def to_json(self) -> str:
        body = {
            "scenarios": self.scenarios,
            "seed": self.seed,
            "families": list(self.families) if self.families else None,
            "profile": self.profile,
            "backends": list(self.backends),
            "unit_size": self.unit_size,
            "chunk_size": self.chunk_size,
            "lease_ttl_s": self.lease_ttl_s,
            "abort_on_disagreements": self.abort_on_disagreements,
            "wall_clock_budget_s": self.wall_clock_budget_s,
            "planted": list(self.planted),
            "shared_verdicts": self.shared_verdicts,
            "auto_batch": self.auto_batch,
            "max_retained": self.max_retained,
            "trace": self.trace,
            "created_at": self.created_at,
        }
        return json.dumps(body)

    @classmethod
    def from_json(cls, body: str) -> "CampaignPlan":
        data = json.loads(body)
        data["families"] = (tuple(data["families"])
                            if data.get("families") else None)
        data["backends"] = tuple(data["backends"])
        data["planted"] = tuple(data.get("planted") or ())
        return cls(**data)


@dataclass(frozen=True)
class WorkUnit:
    """One leased contiguous range ``[start, stop)`` of the spec stream."""

    unit_id: int
    start: int
    stop: int
    lease_expires_at: float
    #: True when this lease was reclaimed from a crashed/stalled worker.
    reclaimed: bool = False

    def __len__(self) -> int:
        return self.stop - self.start


@dataclass
class FleetStatus:
    """One snapshot of the whole fleet, derived from the ledger + bus."""

    status: str
    status_detail: str
    scenarios_total: int
    scenarios_done: int
    units_total: int
    units_done: int
    units_leased: int
    units_pending: int
    lease_churn: int
    disagreements: int
    bus_events: int
    workers: list[dict] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.status in (ABORTED, FINISHED)

    def describe(self) -> str:
        lines = [
            f"campaign: {self.status}"
            + (f" ({self.status_detail})" if self.status_detail else ""),
            f"  scenarios: {self.scenarios_done}/{self.scenarios_total} "
            f"evaluated",
            f"  units:     {self.units_done}/{self.units_total} done, "
            f"{self.units_leased} leased, {self.units_pending} pending"
            + (f", {self.lease_churn} lease reclaim(s)"
               if self.lease_churn else ""),
            f"  bus:       {self.disagreements} disagreement(s), "
            f"{self.bus_events} event(s)",
        ]
        for row in self.workers:
            state = "live" if row["alive"] else "gone"
            note = f" aborted: {row['aborted']}" if row.get("aborted") else ""
            lines.append(
                f"  worker {row['worker']}: {row['scenarios_done']} "
                f"scenarios, {row['units_done']} units "
                f"[{state}]{note}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "status_detail": self.status_detail,
            "scenarios_total": self.scenarios_total,
            "scenarios_done": self.scenarios_done,
            "units_total": self.units_total,
            "units_done": self.units_done,
            "units_leased": self.units_leased,
            "units_pending": self.units_pending,
            "lease_churn": self.lease_churn,
            "disagreements": self.disagreements,
            "bus_events": self.bus_events,
            "workers": self.workers,
        }


class CampaignCoordinator:
    """The shared ledger one fleet coordinates through."""

    def __init__(self, directory: str, *, _create: bool = False):
        self.directory = directory
        db_path = os.path.join(directory, COORDINATOR_DB)
        if not _create and not os.path.exists(db_path):
            raise FileNotFoundError(
                f"{directory!r} is not an initialized campaign directory "
                f"(run `repro campaign-coordinator init` first)")
        self._conn = sqlite3.connect(db_path, timeout=30.0)
        self._conn.isolation_level = None  # explicit BEGIN IMMEDIATE below
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
        except sqlite3.OperationalError:
            pass
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.executescript(_SCHEMA)
        self._plan: CampaignPlan | None = None
        self._bus: DisagreementBus | None = None
        #: High-water mark of every clock reading this instance has seen.
        #: ``time.time()`` is *not* monotonic (NTP steps it backwards), and
        #: lease arithmetic on a stepped-back clock can expire and re-issue
        #: a live worker's lease — so lease writes stamp with
        #: ``max(now, floor)`` and the stored ``lease_expires_at`` is
        #: additionally clamped non-decreasing per unit in SQL (the
        #: cross-process half of the guarantee).
        self._clock_floor = 0.0

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def init(cls, directory: str,
             plan: CampaignPlan) -> "CampaignCoordinator":
        """Create the campaign directory and partition the spec stream."""
        os.makedirs(directory, exist_ok=True)
        coordinator = cls(directory, _create=True)
        if plan.created_at == 0.0:
            plan = replace(plan, created_at=time.time())
        already = ValueError(
            f"{directory!r} already holds an initialized campaign; "
            f"attach workers with `repro campaign --coordinator` or "
            f"choose a fresh directory")
        try:
            # Existence check and insert under ONE write lock: two racing
            # inits must serialize, with the loser seeing the winner's
            # row (not an IntegrityError from a stale autocommit read).
            with coordinator._write():
                if coordinator._conn.execute(
                        "SELECT COUNT(*) FROM plan").fetchone()[0]:
                    raise already
                coordinator._conn.execute(
                    "INSERT INTO plan (id, body, created_at) "
                    "VALUES (1, ?, ?)",
                    (plan.to_json(), plan.created_at))
                units = [(i, start,
                          min(start + plan.unit_size, plan.scenarios))
                         for i, start in enumerate(
                             range(0, plan.scenarios, plan.unit_size))]
                coordinator._conn.executemany(
                    "INSERT INTO units (unit_id, start, stop) "
                    "VALUES (?, ?, ?)", units)
        except sqlite3.IntegrityError:
            coordinator.close()
            raise already from None
        except Exception:
            coordinator.close()
            raise
        coordinator._plan = plan
        return coordinator

    @classmethod
    def attach(cls, directory: str) -> "CampaignCoordinator":
        """Open an existing campaign directory (workers, status, resume)."""
        return cls(directory)

    def close(self) -> None:
        if self._bus is not None:
            self._bus.close()
            self._bus = None
        self._conn.close()

    # -- accessors ------------------------------------------------------------

    def plan(self) -> CampaignPlan:
        if self._plan is None:
            row = self._conn.execute(
                "SELECT body FROM plan WHERE id = 1").fetchone()
            if row is None:
                raise ValueError(
                    f"{self.directory!r} has no campaign plan (corrupt or "
                    f"half-initialized directory)")
            self._plan = CampaignPlan.from_json(row[0])
        return self._plan

    @property
    def bus(self) -> DisagreementBus:
        if self._bus is None:
            self._bus = DisagreementBus(self.directory)
        return self._bus

    @property
    def verdict_cache_path(self) -> str | None:
        if not self.plan().shared_verdicts:
            return None
        return os.path.join(self.directory, SHARED_VERDICTS)

    @property
    def kernel_cache_path(self) -> str | None:
        """Shared tabulated-kernel store for batch-running fleets.

        Gated on the same ``shared_verdicts`` switch as the verdict
        store: it expresses "workers may share campaign-directory sqlite
        files", and a fleet that opts out of one shared cache means to
        opt out of both.
        """
        plan = self.plan()
        if not plan.auto_batch and "batch" not in plan.backends:
            return None
        if not plan.shared_verdicts:
            return None
        return os.path.join(self.directory, SHARED_KERNELS)

    @property
    def trace_dir(self) -> str | None:
        """The campaign's span sink, or None when the plan leaves
        tracing off."""
        if not self.plan().trace:
            return None
        return os.path.join(self.directory, TRACE_DIR)

    # -- lease protocol -------------------------------------------------------

    def _lease_clock(self, now: float | None) -> float:
        """One clock reading for lease arithmetic, never moving backwards.

        A wall-clock regression (NTP step) must delay expiry decisions,
        never accelerate them: with a raw stepped-back ``now`` a fresh
        lease would be stamped to expire *before* a live sibling's, and
        the expiry sweep could reclaim (and double-evaluate) a unit whose
        owner is still heartbeating.  Clamping to the instance high-water
        mark makes every lease computation see non-decreasing time; the
        stored ``lease_expires_at`` is clamped non-decreasing in SQL as
        well, which covers regressions observed across *different*
        coordinator processes sharing the ledger.
        """
        now = time.time() if now is None else now
        self._clock_floor = max(self._clock_floor, now)
        return self._clock_floor

    def acquire(self, worker: str,
                now: float | None = None) -> WorkUnit | None:
        """Lease the lowest pending-or-expired unit, or None when all are
        done or validly held by live workers."""
        now = self._lease_clock(now)
        ttl = self.plan().lease_ttl_s
        with self._write():
            row = self._conn.execute(
                "SELECT unit_id, start, stop, state FROM units "
                "WHERE state = ? OR (state = ? AND lease_expires_at < ?) "
                "ORDER BY unit_id LIMIT 1",
                (PENDING, LEASED, now)).fetchone()
            if row is None:
                return None
            unit_id, start, stop, state = row
            reclaimed = state == LEASED
            self._conn.execute(
                "UPDATE units SET state = ?, worker = ?, "
                "lease_expires_at = MAX(COALESCE(lease_expires_at, 0), ?), "
                "attempts = attempts + 1, "
                "reclaims = reclaims + ? WHERE unit_id = ?",
                (LEASED, worker, now + ttl, int(reclaimed), unit_id))
            self._touch_worker(worker, now)
        _LEASES["acquired"].inc()
        if reclaimed:
            _LEASES["reclaimed"].inc()
        return WorkUnit(unit_id, start, stop, now + ttl, reclaimed)

    def heartbeat(self, worker: str, unit_id: int, *,
                  scenarios: int = 0,
                  now: float | None = None) -> bool:
        """Extend the lease and credit ``scenarios`` evaluated since the
        last beat; False means the lease was reclaimed — abandon the unit
        (the new owner re-derives the same results)."""
        now = self._lease_clock(now)
        ttl = self.plan().lease_ttl_s
        with self._write():
            self._touch_worker(worker, now)
            if scenarios:
                self._conn.execute(
                    "UPDATE workers SET scenarios_done = scenarios_done + ? "
                    "WHERE worker = ?", (scenarios, worker))
            # MAX: a beat computed on a stepped-back clock extends or
            # leaves the lease alone — it can never *shorten* one.
            updated = self._conn.execute(
                "UPDATE units SET "
                "lease_expires_at = MAX(COALESCE(lease_expires_at, 0), ?) "
                "WHERE unit_id = ? AND state = ? AND worker = ?",
                (now + ttl, unit_id, LEASED, worker)).rowcount
        return bool(updated)

    def complete(self, worker: str, unit_id: int, report_state: dict,
                 now: float | None = None) -> bool:
        """Record a finished unit (first completion wins; duplicates from
        reclaimed leases are discarded so no scenario counts twice)."""
        now = time.time() if now is None else now
        with self._write():
            state = self._conn.execute(
                "SELECT state FROM units WHERE unit_id = ?",
                (unit_id,)).fetchone()
            if state is None:
                raise ValueError(f"unknown unit {unit_id}")
            if state[0] == DONE:
                _LEASES["duplicate"].inc()
                return False
            self._conn.execute(
                "UPDATE units SET state = ?, report = ?, completed_at = ?, "
                "completed_by = ?, worker = NULL, lease_expires_at = NULL "
                "WHERE unit_id = ?",
                (DONE, json.dumps(report_state, default=repr), now, worker,
                 unit_id))
            self._touch_worker(worker, now)
            # Scenario credit accrues via heartbeats (so abandoned leases
            # still show the work they burned); completion adds the unit.
            self._conn.execute(
                "UPDATE workers SET units_done = units_done + 1 "
                "WHERE worker = ?", (worker,))
            remaining = self._conn.execute(
                "SELECT COUNT(*) FROM units WHERE state != ?",
                (DONE,)).fetchone()[0]
            if remaining == 0:
                self._conn.execute(
                    "UPDATE plan SET status = ? "
                    "WHERE id = 1 AND status = ?",
                    (FINISHED, RUNNING))
        _LEASES["completed"].inc()
        return True

    # -- fleet state ----------------------------------------------------------

    def abort(self, reason: str, worker: str = "?") -> None:
        """Mark the campaign aborted (idempotent; first reason sticks) and
        announce it on the bus so every worker stops within one chunk."""
        with self._write():
            changed = self._conn.execute(
                "UPDATE plan SET status = ?, status_detail = ? "
                "WHERE id = 1 AND status = ?",
                (ABORTED, reason, RUNNING)).rowcount
        if changed:
            self.bus.publish(ABORT, worker, detail=reason)

    def campaign_state(self) -> tuple[str, str]:
        row = self._conn.execute(
            "SELECT status, status_detail FROM plan WHERE id = 1").fetchone()
        return (row[0], row[1]) if row else (RUNNING, "")

    def exceeded_budget(self, now: float | None = None) -> bool:
        plan = self.plan()
        if plan.wall_clock_budget_s is None:
            return False
        now = time.time() if now is None else now
        return now - plan.created_at >= plan.wall_clock_budget_s

    def record_worker_exit(self, worker: str, *, wall_clock_s: float,
                           bus_latency_s: float | None,
                           aborted: str | None) -> None:
        with self._write():
            self._touch_worker(worker, time.time())
            self._conn.execute(
                "UPDATE workers SET wall_clock_s = ?, bus_latency_s = ?, "
                "aborted = ? WHERE worker = ?",
                (wall_clock_s, bus_latency_s, aborted, worker))

    def status(self, now: float | None = None) -> FleetStatus:
        now = time.time() if now is None else now
        plan = self.plan()
        state, detail = self.campaign_state()
        counts = dict(self._conn.execute(
            "SELECT state, COUNT(*) FROM units GROUP BY state"))
        done_scenarios = self._conn.execute(
            "SELECT COALESCE(SUM(stop - start), 0) FROM units "
            "WHERE state = ?", (DONE,)).fetchone()[0]
        churn = self._conn.execute(
            "SELECT COALESCE(SUM(reclaims), 0) FROM units").fetchone()[0]
        workers = []
        for row in self._conn.execute(
                "SELECT worker, last_seen, scenarios_done, units_done, "
                "wall_clock_s, bus_latency_s, aborted FROM workers "
                "ORDER BY worker"):
            workers.append({
                "worker": row[0],
                "last_seen": row[1],
                "alive": now - row[1] <= 2 * plan.lease_ttl_s,
                "scenarios_done": row[2],
                "units_done": row[3],
                "wall_clock_s": row[4],
                "bus_latency_s": row[5],
                "aborted": row[6],
            })
        return FleetStatus(
            status=state,
            status_detail=detail,
            scenarios_total=plan.scenarios,
            scenarios_done=done_scenarios,
            units_total=sum(counts.values()),
            units_done=counts.get(DONE, 0),
            units_leased=counts.get(LEASED, 0),
            units_pending=counts.get(PENDING, 0),
            lease_churn=churn,
            disagreements=self.bus.disagreement_count(),
            bus_events=self.bus.count(),
            workers=workers,
        )

    def merged_report(self):
        """Live merge of every completed unit's partial report.

        Valid at any point of the campaign — mid-flight it covers the
        units done so far (the ``repro campaign-coordinator watch`` view);
        after the last completion it is the fleet's canonical result,
        equal to a single-process run of the same plan because units
        partition the deterministic stream and completion is first-wins.
        """
        from ..campaigns.report import CampaignReport

        states = [json.loads(row[0]) for row in self._conn.execute(
            "SELECT report FROM units WHERE state = ? ORDER BY unit_id",
            (DONE,)) if row[0]]
        merged = CampaignReport.merge(
            [CampaignReport.from_state(state) for state in states])
        state, detail = self.campaign_state()
        if state == ABORTED and not merged.aborted:
            merged.aborted = detail or "fleet aborted"
        status = self.status()
        merged.jobs = max(len(status.workers), 1)
        # merge() took the max over *unit* durations, which is not fleet
        # latency; the longest worker lifetime is (0.0 for each worker
        # still running — then the slowest finished unit is the best
        # available floor, kept from merge()).
        merged.wall_clock_s = max(
            [merged.wall_clock_s]
            + [row["wall_clock_s"] for row in status.workers])
        merged.fleet = {
            "workers": {
                row["worker"]: {
                    "scenarios": row["scenarios_done"],
                    "units": row["units_done"],
                    "wall_clock_s": row["wall_clock_s"],
                    "scenarios_per_second": (
                        row["scenarios_done"] / row["wall_clock_s"]
                        if row["wall_clock_s"] else 0.0),
                    "bus_latency_s": row["bus_latency_s"],
                    "aborted": row["aborted"],
                }
                for row in status.workers
            },
            "lease_churn": status.lease_churn,
            "units": {
                "total": status.units_total,
                "done": status.units_done,
                "leased": status.units_leased,
                "pending": status.units_pending,
            },
            "bus": {
                "disagreements": status.disagreements,
                "events": status.bus_events,
            },
        }
        return merged

    def fleet_metrics(self) -> dict:
        """The fleet-wide ``repro-metrics/1`` snapshot: the latest
        registry snapshot each worker published on the bus, merged.
        Empty-but-valid when no worker has published yet."""
        payloads = self.bus.latest_metrics_payloads()
        return _obs_metrics.merge_snapshots(
            [payloads[worker] for worker in sorted(payloads)])

    def all_units_done(self) -> bool:
        return self._conn.execute(
            "SELECT COUNT(*) FROM units WHERE state != ?",
            (DONE,)).fetchone()[0] == 0

    # -- internals ------------------------------------------------------------

    def _touch_worker(self, worker: str, now: float) -> None:
        self._conn.execute(
            "INSERT INTO workers (worker, registered_at, last_seen) "
            "VALUES (?, ?, ?) "
            "ON CONFLICT(worker) DO UPDATE SET last_seen = excluded.last_seen",
            (worker, now, now))

    def _write(self):
        """``BEGIN IMMEDIATE`` context: one atomic ledger mutation."""
        return _WriteTransaction(self._conn)


class _WriteTransaction:
    def __init__(self, conn: sqlite3.Connection):
        self.conn = conn

    def __enter__(self):
        self.conn.execute("BEGIN IMMEDIATE")
        return self.conn

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.conn.execute("COMMIT")
        else:
            self.conn.execute("ROLLBACK")
        return False
