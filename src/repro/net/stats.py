"""Measurement collection for simulation runs.

Records exactly the quantities the paper's evaluation plots:

* **convergence time** — the timestamp of the last route change
  (Sec. VI-A: "from start of protocol until all nodes have computed routes
  to all destinations");
* **bandwidth over time** — per-node average MBps in fixed bins
  (Figs. 5 and 6);
* **communication cost** — total and per-node bytes (Sec. VI-D quotes
  per-node MB for PV / HLP / HLP-CH).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class BandwidthPoint:
    """One bin of the bandwidth-vs-time series."""

    time: float
    mbps_per_node: float


@dataclass
class StatsCollector:
    """Accumulates transport and routing events during a run."""

    bytes_sent_total: int = 0
    messages_sent: int = 0
    bytes_by_node: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: (timestamp, size) of every send — the raw series behind the figures.
    send_log: list[tuple[float, int]] = field(default_factory=list)
    route_changes: int = 0
    last_route_change: float = 0.0
    last_send: float = 0.0

    # -- recording (called by the simulator / protocol engines) ---------------

    def record_send(self, now: float, src: str, dst: str, size: int) -> None:
        self.bytes_sent_total += size
        self.messages_sent += 1
        self.bytes_by_node[src] += size
        self.send_log.append((now, size))
        self.last_send = max(self.last_send, now)

    def record_receive(self, now: float, src: str, dst: str, size: int) -> None:
        # Kept for symmetry / future queueing analysis; reception itself is
        # not a plotted quantity in the paper.
        pass

    def record_route_change(self, now: float, node: str) -> None:
        self.route_changes += 1
        self.last_route_change = max(self.last_route_change, now)

    # -- derived metrics ---------------------------------------------------------

    @property
    def convergence_time(self) -> float:
        """Time of the last route change (0.0 when nothing ever changed)."""
        return self.last_route_change

    def per_node_megabytes(self, node_count: int) -> float:
        """Average communication cost per node in MB (Sec. VI-D metric)."""
        if node_count <= 0:
            return 0.0
        return self.bytes_sent_total / node_count / 1e6

    def bandwidth_series(self, node_count: int, bin_s: float = 0.02,
                         until: float | None = None) -> list[BandwidthPoint]:
        """Average per-node bandwidth (MBps) in ``bin_s`` bins.

        The paper's Figs. 5/6 plot "average per-node bandwidth utilization
        (MBps)" against time; MBps there is *megabytes* per second.
        """
        if node_count <= 0 or bin_s <= 0:
            return []
        horizon = until
        if horizon is None:
            horizon = max((t for t, _ in self.send_log), default=0.0)
        bins = int(horizon / bin_s + 1e-9) + 1
        totals = [0.0] * bins
        for t, size in self.send_log:
            index = int(t / bin_s)
            if index < bins:
                totals[index] += size
        return [
            BandwidthPoint(time=round(i * bin_s, 9),
                           mbps_per_node=total / bin_s / node_count / 1e6)
            for i, total in enumerate(totals)
        ]

    def summary(self, node_count: int) -> dict[str, float]:
        """Headline numbers for reports and benchmarks."""
        return {
            "messages": float(self.messages_sent),
            "total_mb": self.bytes_sent_total / 1e6,
            "per_node_mb": self.per_node_megabytes(node_count),
            "route_changes": float(self.route_changes),
            "convergence_time_s": self.convergence_time,
        }
