"""Discrete-event network simulator (the reproduction's ns-3 stand-in).

The paper executes generated NDlog programs on RapidNet over ns-3 in
*simulation mode*, and over real sockets in *deployment mode*.  This module
provides the simulation substrate both our NDlog runtime and the native
protocol engines run on:

* a time-ordered event loop with deterministic tie-breaking;
* message transport over :class:`~repro.net.network.Network` links with
  per-direction FIFO serialization (transmission delay = size / bandwidth),
  propagation latency, and seeded jitter;
* per-node byte/message accounting feeding the bandwidth-over-time figures
  (Figs. 5 and 6);
* quiescence detection: ``run()`` returns when no events remain, which for
  safe policies is the convergence instant — unsafe policies hit the
  event/time caps instead (that is how BAD GADGET's divergence shows up).
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

from .network import Network
from .stats import StatsCollector


def next_flush_time(node: str, now: float, interval: float,
                    rng: random.Random | None = None) -> float:
    """Next batched-propagation tick for ``node`` (MRAI-style timers).

    Each node flushes on its own phase-shifted grid — the offset is a
    deterministic function of the node name — plus, when a seeded ``rng``
    is supplied, a small per-flush drift: real per-peer advertisement
    timers run mutually desynchronized and drift.  A globally aligned
    grid would keep symmetric oscillators (DISAGREE) in perfect lockstep
    forever; staggered, drifting timers let one node observe the other's
    settled state mid-cycle and wedge into a stable solution, which is
    exactly how periodic advertisement (MRAI) tames those configurations
    in deployed BGP.
    """
    phase = (zlib.crc32(node.encode()) % 997) / 997 * interval
    tick = phase + (math.floor((now - phase) / interval) + 1) * interval
    if rng is not None:
        tick += rng.uniform(0.0, 0.1 * interval)
    return tick


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


@dataclass
class Message:
    """An in-flight protocol message."""

    src: str
    dst: str
    payload: Any
    size_bytes: int


class StopReason:
    """Why :meth:`Simulator.run` returned."""

    QUIESCENT = "quiescent"
    TIME_LIMIT = "time-limit"
    EVENT_LIMIT = "event-limit"
    STOPPED = "stopped"


class Simulator:
    """Event loop + message transport over a :class:`Network`.

    Protocol engines register a per-node message handler with
    :meth:`attach`; :meth:`send` transports a message between neighbors.
    Handlers and timers run inside the loop; everything is deterministic
    for a given seed.
    """

    def __init__(self, network: Network, seed: int = 0):
        self.network = network
        self.rng = random.Random(seed)
        self.stats = StatsCollector()
        self.now = 0.0
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self._handlers: dict[str, Callable[[str, Any], None]] = {}
        #: Per-direction earliest free time of each link (FIFO serialization).
        self._link_free_at: dict[tuple[str, str], float] = {}
        #: Per-direction latest scheduled arrival (FIFO delivery).
        self._link_arrival_at: dict[tuple[str, str], float] = {}
        self._stopped = False

    # -- wiring --------------------------------------------------------------

    def attach(self, node: str, handler: Callable[[str, Any], None]) -> None:
        """Register ``handler(src, payload)`` as ``node``'s receive callback."""
        if node not in self.network.nodes():
            raise KeyError(f"unknown node {node}")
        self._handlers[node] = handler

    # -- scheduling ------------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue,
                       _Event(self.now + delay, next(self._seq), action))

    def at(self, when: float, action: Callable[[], None]) -> None:
        """Run ``action`` at absolute time ``when`` (>= now)."""
        self.schedule(max(0.0, when - self.now), action)

    def stop(self) -> None:
        """Abort the run at the end of the current event."""
        self._stopped = True

    # -- transport ----------------------------------------------------------------

    def send(self, src: str, dst: str, payload: Any, size_bytes: int) -> None:
        """Transmit a message to a *neighbor* over the connecting link.

        Models FIFO serialization per link direction: a burst of updates
        queues behind itself, which is what makes oscillating configurations
        visibly saturate links in the Fig. 5 traces.  Delivery is FIFO per
        direction as well — jitter perturbs arrival times but never
        reorders two messages on the same directed link, because the
        protocol sessions this simulates (BGP over TCP, RapidNet's
        transport) are ordered byte streams; without the clamp a stale
        advertisement could overtake the fresh one that replaces it and
        freeze a stale adjacency-RIB entry into the converged state.
        """
        link = self.network.link(src, dst)
        direction = (src, dst)
        start = max(self.now, self._link_free_at.get(direction, 0.0))
        tx_done = start + link.transmission_delay(size_bytes)
        self._link_free_at[direction] = tx_done
        jitter = self.rng.uniform(0.0, link.jitter_s) if link.jitter_s else 0.0
        arrival = max(tx_done + link.latency_s + jitter,
                      self._link_arrival_at.get(direction, 0.0))
        self._link_arrival_at[direction] = arrival
        self.stats.record_send(self.now, src, dst, size_bytes)
        message = Message(src, dst, payload, size_bytes)
        self.at(arrival, lambda: self._deliver(message))

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.dst)
        self.stats.record_receive(self.now, message.src, message.dst,
                                  message.size_bytes)
        if handler is not None:
            handler(message.src, message.payload)

    # -- main loop -------------------------------------------------------------------

    def run(self, until: float | None = None,
            max_events: int | None = None) -> str:
        """Drain the event queue; returns a :class:`StopReason` constant."""
        processed = 0
        self._stopped = False
        while self._queue:
            if self._stopped:
                return StopReason.STOPPED
            event = self._queue[0]
            if until is not None and event.time > until:
                self.now = until
                return StopReason.TIME_LIMIT
            if max_events is not None and processed >= max_events:
                return StopReason.EVENT_LIMIT
            heapq.heappop(self._queue)
            self.now = max(self.now, event.time)
            event.action()
            processed += 1
        return StopReason.QUIESCENT

    @property
    def pending_events(self) -> int:
        return len(self._queue)
