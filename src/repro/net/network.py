"""Physical network model: nodes and attributed links.

This is the substrate the discrete-event simulator transports messages over
(the reproduction's stand-in for ns-3's topology layer).  Links are
bidirectional but carry *per-direction* policy labels — e.g. in Gao-Rexford
topologies ``label(u, v) = 'c'`` means "v is u's customer" while the reverse
direction is ``'p'``.

The default link parameters mirror the paper's experimental setup:
100 Mbps bandwidth, 10 ms latency (Sec. VI-A), with optional jitter
(Sec. VI-B uses up to 3 ms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator

#: Paper defaults (Sec. VI-A): "all links have 100 Mbps in bandwidth and
#: 10 ms latency".
DEFAULT_BANDWIDTH_BPS = 100e6
DEFAULT_LATENCY_S = 0.010


@dataclass
class Link:
    """A bidirectional link with transmission characteristics.

    ``labels`` maps each direction ``(u, v)`` to its policy label; protocol
    engines read them through :meth:`Network.label`.
    """

    a: str
    b: str
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    latency_s: float = DEFAULT_LATENCY_S
    jitter_s: float = 0.0
    weight: int = 1  # IGP cost used by intradomain topologies
    labels: dict[tuple[str, str], Hashable] = field(default_factory=dict)
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def ends(self) -> frozenset:
        return frozenset((self.a, self.b))

    def other(self, node: str) -> str:
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise KeyError(f"{node} is not an endpoint of {self.a}-{self.b}")

    def transmission_delay(self, size_bytes: int) -> float:
        """Serialization time of ``size_bytes`` at the link's bandwidth."""
        return (size_bytes * 8) / self.bandwidth_bps


class Network:
    """A set of named nodes and attributed links.

    Nodes are created implicitly by :meth:`add_link` or explicitly with
    :meth:`add_node` (which may attach arbitrary attributes, e.g. the
    AS's role or its domain in HLP topologies).
    """

    def __init__(self, name: str = "net"):
        self.name = name
        self._nodes: dict[str, dict[str, Any]] = {}
        self._links: dict[frozenset, Link] = {}
        self._adjacency: dict[str, list[str]] = {}

    # -- construction ----------------------------------------------------------

    def add_node(self, node: str, **attrs: Any) -> None:
        entry = self._nodes.setdefault(node, {})
        entry.update(attrs)
        self._adjacency.setdefault(node, [])

    def add_link(self, a: str, b: str, *,
                 bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
                 latency_s: float = DEFAULT_LATENCY_S,
                 jitter_s: float = 0.0,
                 weight: int = 1,
                 label_ab: Hashable = None,
                 label_ba: Hashable = None,
                 **attrs: Any) -> Link:
        """Create (or replace) the link between ``a`` and ``b``."""
        if a == b:
            raise ValueError(f"self-loop on {a}")
        self.add_node(a)
        self.add_node(b)
        link = Link(a, b, bandwidth_bps=bandwidth_bps, latency_s=latency_s,
                    jitter_s=jitter_s, weight=weight, attrs=attrs)
        if label_ab is not None:
            link.labels[(a, b)] = label_ab
        if label_ba is not None:
            link.labels[(b, a)] = label_ba
        key = frozenset((a, b))
        if key not in self._links:
            self._adjacency[a].append(b)
            self._adjacency[b].append(a)
        self._links[key] = link
        return link

    # -- queries ------------------------------------------------------------------

    def nodes(self) -> list[str]:
        return list(self._nodes)

    def node_attrs(self, node: str) -> dict[str, Any]:
        return self._nodes[node]

    def links(self) -> Iterator[Link]:
        return iter(self._links.values())

    def link(self, a: str, b: str) -> Link:
        try:
            return self._links[frozenset((a, b))]
        except KeyError:
            raise KeyError(f"no link {a}-{b} in {self.name}") from None

    def has_link(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._links

    def neighbors(self, node: str) -> list[str]:
        return list(self._adjacency.get(node, []))

    def label(self, u: str, v: str) -> Hashable:
        """Policy label of the direction ``u -> v`` (None if unset)."""
        return self.link(u, v).labels.get((u, v))

    def set_label(self, u: str, v: str, label: Hashable) -> None:
        self.link(u, v).labels[(u, v)] = label

    def node_count(self) -> int:
        return len(self._nodes)

    def link_count(self) -> int:
        return len(self._links)

    # -- graph helpers ---------------------------------------------------------------

    def shortest_path_costs(self, source: str) -> dict[str, int]:
        """Dijkstra over link ``weight`` — IGP costs from ``source``."""
        import heapq

        dist = {source: 0}
        heap: list[tuple[int, str]] = [(0, source)]
        done: set[str] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in done:
                continue
            done.add(node)
            for neighbor in self.neighbors(node):
                weight = self.link(node, neighbor).weight
                candidate = d + weight
                if candidate < dist.get(neighbor, float("inf")):
                    dist[neighbor] = candidate
                    heapq.heappush(heap, (candidate, neighbor))
        return dist

    def connected(self, among: Iterable[str] | None = None) -> bool:
        """True when the (sub)graph over ``among`` (or all nodes) is connected."""
        nodes = list(among) if among is not None else self.nodes()
        if not nodes:
            return True
        allowed = set(nodes)
        seen = {nodes[0]}
        frontier = [nodes[0]]
        while frontier:
            node = frontier.pop()
            for neighbor in self.neighbors(node):
                if neighbor in allowed and neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen == allowed

    def remove_link(self, a: str, b: str) -> None:
        """Delete the link between ``a`` and ``b`` (KeyError if absent)."""
        key = frozenset((a, b))
        if key not in self._links:
            raise KeyError(f"no link {a}-{b} in {self.name}")
        del self._links[key]
        self._adjacency[a].remove(b)
        self._adjacency[b].remove(a)

    def relabeled(self, label_fn) -> "Network":
        """A copy with every directed label mapped through ``label_fn``.

        Lets one physical topology drive protocols with different algebras
        (e.g. the Fig. 6 graph runs HLP on its business-relationship labels
        and the PV baseline on plain hop-count labels).
        """
        copy = Network(name=self.name)
        for node in self.nodes():
            copy.add_node(node, **self.node_attrs(node))
        for link in self.links():
            label_ab = link.labels.get((link.a, link.b))
            label_ba = link.labels.get((link.b, link.a))
            copy.add_link(link.a, link.b,
                          bandwidth_bps=link.bandwidth_bps,
                          latency_s=link.latency_s,
                          jitter_s=link.jitter_s,
                          weight=link.weight,
                          label_ab=None if label_ab is None else label_fn(label_ab),
                          label_ba=None if label_ba is None else label_fn(label_ba),
                          **link.attrs)
        return copy

    def __repr__(self) -> str:
        return (f"<Network {self.name!r}: {self.node_count()} nodes, "
                f"{self.link_count()} links>")
