"""Discrete-event network simulation substrate (ns-3 / RapidNet stand-in).

* :mod:`repro.net.network` — nodes and attributed links (per-direction
  policy labels, bandwidth/latency/jitter, IGP weights);
* :mod:`repro.net.simulator` — event loop, FIFO link serialization,
  deterministic seeded jitter, quiescence detection;
* :mod:`repro.net.stats` — convergence time, bandwidth-over-time series,
  communication cost (the quantities in Figs. 4-6);
* :mod:`repro.net.sizes` — BGP-UPDATE-shaped message size model.
"""

from .network import DEFAULT_BANDWIDTH_BPS, DEFAULT_LATENCY_S, Link, Network
from .simulator import Message, Simulator, StopReason
from .sizes import link_state_size, update_size, withdraw_size
from .stats import BandwidthPoint, StatsCollector
from .trace import TraceEvent, Tracer

__all__ = [
    "BandwidthPoint",
    "DEFAULT_BANDWIDTH_BPS",
    "DEFAULT_LATENCY_S",
    "Link",
    "Message",
    "Network",
    "Simulator",
    "StatsCollector",
    "StopReason",
    "TraceEvent",
    "Tracer",
    "link_state_size",
    "update_size",
    "withdraw_size",
]
