"""Message size model.

The simulator charges each protocol message a byte size so that bandwidth
figures are meaningful.  We use a BGP UPDATE-shaped estimate: fixed header
plus per-hop AS-path bytes plus a small attribute block.  Absolute numbers
only shift the Figs. 5/6 curves vertically; the comparisons (gadget vs
fixed, PV vs HLP vs HLP-CH) depend on message *counts* and path lengths,
which the protocols determine.
"""

from __future__ import annotations

#: BGP message header (RFC 4271) is 19 bytes.
HEADER_BYTES = 19
#: Per-hop cost of the AS_PATH attribute (4-byte AS numbers).
PER_HOP_BYTES = 4
#: NLRI + NEXT_HOP + preference attributes, rounded.
ATTRIBUTE_BYTES = 21


def update_size(path_length: int) -> int:
    """Size of a route advertisement carrying a ``path_length``-hop path."""
    return HEADER_BYTES + ATTRIBUTE_BYTES + PER_HOP_BYTES * max(path_length, 0)


def withdraw_size() -> int:
    """Size of a route withdrawal (no path attribute)."""
    return HEADER_BYTES + ATTRIBUTE_BYTES


def link_state_size(entry_count: int) -> int:
    """Size of an HLP link-state advertisement with ``entry_count`` entries."""
    return HEADER_BYTES + 8 * max(entry_count, 1)
