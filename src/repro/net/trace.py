"""Execution tracing for simulation runs.

The paper's demo (reference [7]) visualizes protocol convergence as a
timeline of advertisements and route changes.  :class:`Tracer` provides
that for any simulator-based engine: attach it before ``run()`` and it
records every transmitted message and every route change, then renders a
text timeline or answers queries (events in a window, per-node activity,
quiet periods).

The tracer wraps the simulator's ``send`` and the stats collector's
``record_route_change`` non-invasively, so it composes with every engine
(GPV, HLP, NDlog runtime) without touching their code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .simulator import Simulator


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    kind: str  # 'send' | 'route'
    node: str
    detail: str


@dataclass
class Tracer:
    """Event recorder for one simulator."""

    events: list[TraceEvent] = field(default_factory=list)
    _sim: Simulator | None = None

    # -- wiring -----------------------------------------------------------------

    def attach(self, sim: Simulator) -> "Tracer":
        """Start recording ``sim``'s sends and route changes."""
        if self._sim is not None:
            raise RuntimeError("tracer is already attached")
        self._sim = sim
        original_send = sim.send
        original_route = sim.stats.record_route_change

        def traced_send(src: str, dst: str, payload: Any,
                        size_bytes: int) -> None:
            self.events.append(TraceEvent(
                sim.now, "send", src,
                f"-> {dst} ({size_bytes} B, {_describe(payload)})"))
            original_send(src, dst, payload, size_bytes)

        def traced_route(now: float, node: str) -> None:
            self.events.append(TraceEvent(now, "route", node,
                                          "best route changed"))
            original_route(now, node)

        sim.send = traced_send
        sim.stats.record_route_change = traced_route
        return self

    # -- queries ------------------------------------------------------------------

    def between(self, start: float, end: float) -> list[TraceEvent]:
        return [e for e in self.events if start <= e.time < end]

    def by_node(self, node: str) -> list[TraceEvent]:
        return [e for e in self.events if e.node == node]

    def route_changes(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "route"]

    def quiet_after(self) -> float:
        """Timestamp of the last recorded event (0.0 when none)."""
        return max((e.time for e in self.events), default=0.0)

    # -- rendering ------------------------------------------------------------------

    def timeline(self, limit: int = 50, width: int = 72) -> str:
        """A text timeline of the first ``limit`` events."""
        lines = [f"{'t(s)':>9}  {'node':<8} event"]
        for event in self.events[:limit]:
            text = f"{event.time:>9.4f}  {event.node:<8} "
            text += ("ROUTE  " if event.kind == "route" else "SEND   ")
            text += event.detail
            lines.append(text[:width])
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)

    def activity_histogram(self, bin_s: float = 0.1) -> dict[float, int]:
        """Events per time bin — the shape of convergence at a glance."""
        bins: dict[float, int] = {}
        for event in self.events:
            key = round(int(event.time / bin_s) * bin_s, 9)
            bins[key] = bins.get(key, 0) + 1
        return dict(sorted(bins.items()))


def _describe(payload: Any) -> str:
    name = type(payload).__name__
    dest = getattr(payload, "dest", None)
    if dest is not None:
        return f"{name} dest={dest}"
    if isinstance(payload, tuple) and len(payload) == 2:
        return f"{payload[0]} tuple"
    return name
