"""Well-formedness checks for routing algebras.

The algebra definitions of Sec. II carry side conditions that are easy to
violate when hand-writing a policy: ⪯ must be a total preorder with φ
strictly worst, ⊕ must absorb φ, reverse labels must be involutive, and the
declared preference statements must agree with the operational comparator.
:func:`validate_algebra` checks them all on finite algebras (and on a
signature sample for closed-form ones) and returns a list of human-readable
violations — empty means well-formed.

These checks run inside the library's own test suite for every shipped
policy, and are exposed so users get the same safety net for theirs.
"""

from __future__ import annotations

from .base import PHI, Pref, RoutingAlgebra
from .extended import ExtendedAlgebra


def validate_algebra(algebra: RoutingAlgebra,
                     sample_size: int = 12) -> list[str]:
    """Check the algebra's structural laws; return violations (if any)."""
    violations: list[str] = []
    signatures = algebra.signatures()
    if signatures is None:
        try:
            signatures = algebra.sample_signatures(sample_size)
        except NotImplementedError:
            return [f"{algebra.name}: infinite Σ and no sample_signatures()"]
    signatures = list(signatures)
    labels = list(algebra.labels())

    violations += _check_preference_laws(algebra, signatures)
    violations += _check_phi_laws(algebra, signatures, labels)
    if isinstance(algebra, ExtendedAlgebra):
        violations += _check_extended_laws(algebra, labels)
    return violations


def _check_preference_laws(algebra: RoutingAlgebra,
                           signatures: list) -> list[str]:
    out = []
    for s in signatures:
        if algebra.preference(s, s) is not Pref.EQUAL:
            out.append(f"reflexivity: {s} not equal to itself")
    for s1 in signatures:
        for s2 in signatures:
            forward = algebra.preference(s1, s2)
            backward = algebra.preference(s2, s1)
            if forward is Pref.BETTER and backward is not Pref.WORSE:
                out.append(f"antisymmetry: {s1} ≺ {s2} but not {s2} ≻ {s1}")
            if forward is Pref.EQUAL and backward is not Pref.EQUAL:
                out.append(f"symmetry of ties: {s1} ~ {s2} one-sided")
    # Transitivity of strict preference on a bounded triple scan.
    bound = min(len(signatures), 8)
    head = signatures[:bound]
    for a in head:
        for b in head:
            for c in head:
                if (algebra.preference(a, b) is Pref.BETTER
                        and algebra.preference(b, c) is Pref.BETTER
                        and algebra.preference(a, c) is not Pref.BETTER):
                    out.append(f"transitivity: {a} ≺ {b} ≺ {c} but not "
                               f"{a} ≺ {c}")
    return out


def _check_phi_laws(algebra: RoutingAlgebra, signatures: list,
                    labels: list) -> list[str]:
    out = []
    if algebra.preference(PHI, PHI) is not Pref.EQUAL:
        out.append("φ must tie with itself")
    for s in signatures:
        if algebra.preference(s, PHI) is not Pref.BETTER:
            out.append(f"φ must be strictly worst (vs {s})")
        if algebra.preference(PHI, s) is not Pref.WORSE:
            out.append(f"φ comparison asymmetric (vs {s})")
    for label in labels:
        if algebra.oplus(label, PHI) is not PHI:
            out.append(f"⊕ must absorb φ (label {label})")
    return out


def _check_extended_laws(algebra: ExtendedAlgebra,
                         labels: list) -> list[str]:
    out = []
    for label in labels:
        try:
            twice = algebra.reverse_label(algebra.reverse_label(label))
        except KeyError:
            out.append(f"reverse label undefined for {label}")
            continue
        if twice != label:
            out.append(f"reverse_label not involutive on {label} "
                       f"(round-trips to {twice})")
    return out
