"""The routing algebra HLP computes (paper Sec. VI-D, algebraically).

HLP (hybrid link-state / fragmented-path-vector, :mod:`repro.protocols.hlp`)
routes on summed positive link weights under a *domain-granularity* loop
constraint: a route's fragmented path records the sequence of domains it
crosses, and a domain never accepts a route whose domain path already
contains it.  That is an algebra:

* **Σ** — pairs ``(cost, dpath)``: total weight so far plus the tuple of
  domains from the current holder's domain to the destination's, inclusive;
* **L** — per-direction triples ``(weight, receiver_domain, sender_domain)``;
* **⊕** — add the weight; an intra-domain hop keeps the domain path, a
  cross-domain hop prepends the receiving domain, and re-entering a domain
  already on the path is prohibited (φ) — exactly HLP's
  ``my_domain in adv.dpath`` rejection;
* **⪯** — lexicographic on (cost, domain-path length, domain path):
  lower cost wins, then the shorter domain path, then the
  lexicographically smaller one.  The refinement below the cost is not
  cosmetic: the domain path decides *advertisability* (a route through
  domain X cannot be offered to domain X), so two equal-cost routes with
  different domain paths are observably different — leaving them tied
  would let implementations settle in genuinely different stable states.
  With the refinement the preference is a strict total order per
  signature, costs still strictly increase along any cycle (no dispute
  wheel), and the stable state is unique — which is what makes the
  three-way differential assert signature *identity*, not just equal
  cost.

Running the generic GPV engine (or the generated NDlog program) over a
domain-annotated topology labelled for this algebra computes the same
stable cost assignment as the HLP engine's link-state + FPV machinery:
within a domain the minimum-cost router path *is* the link-state distance,
and across domains both mechanisms take a cost-minimal domain-simple path.
⊕ strictly increases the cost (weights are positive), so the algebra is
strictly monotonic — provably safe — which is what licenses the three-way
``gpv ~ ndlog ~ hlp`` differential in the campaign oracle.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from .base import (
    PHI,
    ClosedFormCertificate,
    Label,
    Pref,
    RoutingAlgebra,
    Signature,
)

#: The weight vocabulary of HLP campaign topologies
#: (:func:`repro.topology.hlp_topo.hlp_topology` draws 1..10; cross links
#: are weight 5).
HLP_WEIGHTS = tuple(range(1, 11))


class HLPCostAlgebra(RoutingAlgebra):
    """Domain-constrained shortest path — the algebra behind HLP."""

    name = "hlp-cost"

    def __init__(self, domains: Sequence[Hashable],
                 weights: Sequence[int] = HLP_WEIGHTS):
        if not domains:
            raise ValueError("need at least one domain")
        bad = [w for w in weights if w <= 0]
        if bad:
            raise ValueError(f"link weights must be positive, got {bad}")
        self._domains = tuple(sorted(set(domains), key=repr))
        self._weights = tuple(sorted(set(weights)))

    # -- operational interface ------------------------------------------------

    def preference(self, s1: Signature, s2: Signature) -> Pref:
        if s1 is PHI and s2 is PHI:
            return Pref.EQUAL
        if s1 is PHI:
            return Pref.WORSE
        if s2 is PHI:
            return Pref.BETTER
        rank1 = (s1[0], len(s1[1]), s1[1])
        rank2 = (s2[0], len(s2[1]), s2[1])
        if rank1 < rank2:
            return Pref.BETTER
        if rank1 > rank2:
            return Pref.WORSE
        return Pref.EQUAL

    def oplus(self, label: Label, sig: Signature) -> Signature:
        if sig is PHI:
            return PHI
        weight, here, there = label
        cost, dpath = sig
        if here == there:
            return (cost + weight, dpath)
        if here in dpath:
            return PHI  # domain-granularity loop prevention
        return (cost + weight, (here,) + tuple(dpath))

    def origin_signature(self, label: Label) -> Signature:
        """One-hop route over ``label`` toward the destination.

        The domain path covers the holder's domain through the
        destination's — one domain for an intra-domain origination, two for
        a direct cross-domain adjacency.
        """
        weight, here, dest_domain = label
        if here == dest_domain:
            return (weight, (dest_domain,))
        return (weight, (here, dest_domain))

    def labels(self) -> Sequence[Label]:
        return [(weight, here, there)
                for weight in self._weights
                for here in self._domains
                for there in self._domains]

    # -- closed-form analysis -------------------------------------------------

    @property
    def closed_form_monotonicity(self) -> ClosedFormCertificate:
        return ClosedFormCertificate(
            strictly_monotonic=True,
            monotonic=True,
            justification=(
                "(+) adds a strictly positive link weight to the cost "
                "component, which alone decides preference; domain-path "
                "extensions either keep or lengthen the path or yield phi"
            ),
        )

    def sample_signatures(self, count: int = 16) -> list[Signature]:
        domains = self._domains
        samples: list[Signature] = []
        for i in range(count):
            dpath = tuple(domains[:1 + i % max(1, min(len(domains), 3))])
            samples.append((1 + i, dpath))
        return samples


def hide_cost(cost: int, tau: int) -> int:
    """HLP cost hiding: advertise costs rounded up to multiples of τ.

    ``tau = 0`` (or 1) means exact costs.  Hiding never understates a
    cost — ``hide_cost(c, tau) >= c`` — which is what keeps the hidden
    algebra strictly monotonic: an extension still strictly worsens the
    advertised cost.
    """
    if tau <= 1:
        return cost
    return ((cost + tau - 1) // tau) * tau


class HLPTauAlgebra(RoutingAlgebra):
    """Finite cost-hiding algebra — the τ-sweep campaign family.

    Signatures are advertised cost levels ``1..max_cost``; ⊕ adds the
    link weight and *hides* the sum (:func:`hide_cost`), and anything
    beyond the cap is prohibited (φ), bounding Σ.  Lower advertised cost
    is strictly preferred, so the preference relation — and with it the
    tier-2 solver's *preference prefix* — depends only on ``max_cost``:
    every ``(tau, weights)`` variant drawn by the ``tau-sweep`` family
    shares one prefix while contributing a fresh monotonicity suffix,
    which is exactly the workload the incremental solver's per-prefix
    warm start (push/pop against warm distances) was built for.

    Deliberately *not* closed-form: Σ is finite and the point of the
    family is to reach the SMT tier, so the analyzer proves strict
    monotonicity from the enumerated tables every time the suffix
    changes.
    """

    name = "hlp-tau"

    def __init__(self, tau: int = 0,
                 weights: Sequence[int] = (1, 2, 3),
                 max_cost: int = 14):
        if tau < 0:
            raise ValueError("tau must be >= 0")
        bad = [w for w in weights if w <= 0]
        if bad:
            raise ValueError(f"link weights must be positive, got {bad}")
        # Hiding rounds costs *up*, so the cap must admit the hidden
        # rendering of every one-hop route — otherwise every origination
        # is PHI and scenarios are vacuously empty.
        if any(hide_cost(w, tau) > max_cost for w in weights):
            raise ValueError(
                f"max_cost={max_cost} cannot admit one-hop routes: "
                f"hide_cost(w, tau={tau}) exceeds it for some weight")
        self.tau = tau
        self._weights = tuple(sorted(set(weights)))
        self.max_cost = max_cost
        self.name = f"hlp-tau({tau})"

    # -- operational interface ------------------------------------------------

    def preference(self, s1: Signature, s2: Signature) -> Pref:
        if s1 is PHI and s2 is PHI:
            return Pref.EQUAL
        if s1 is PHI:
            return Pref.WORSE
        if s2 is PHI:
            return Pref.BETTER
        if s1 < s2:
            return Pref.BETTER
        if s1 > s2:
            return Pref.WORSE
        return Pref.EQUAL

    def oplus(self, label: Label, sig: Signature) -> Signature:
        if sig is PHI:
            return PHI
        hidden = hide_cost(sig + label, self.tau)
        return hidden if hidden <= self.max_cost else PHI

    def origin_signature(self, label: Label) -> Signature:
        hidden = hide_cost(label, self.tau)
        return hidden if hidden <= self.max_cost else PHI

    def labels(self) -> Sequence[Label]:
        return self._weights

    def canonical_token(self):
        """Closed-form canonical identity (see ``campaigns.canonical``).

        ``(tau, weights, max_cost)`` determines every preference
        statement and ⊕ entry this algebra enumerates, so equal tokens
        imply identical constraint systems — which spares the tau-sweep
        campaign family the quadratic table rendering on every draw
        (the per-scenario keying cost was what kept the batch backend
        slower than scalar on this family).
        """
        return (self.tau, self._weights, self.max_cost)

    # -- declarative interface ------------------------------------------------

    def signatures(self) -> Sequence[Signature]:
        """The full cost range, *independent of tau and the weights*.

        Unreachable levels (e.g. non-multiples of τ) are enumerated
        anyway: they cost a few extra prefix atoms but buy the sweep-wide
        structural identity of the preference prefix that makes the
        incremental solver's warm start hit.
        """
        return range(1, self.max_cost + 1)

    def sample_signatures(self, count: int = 16) -> list[Signature]:
        return list(self.signatures())[:count]
