"""Lexical product of routing algebras (paper Sec. II-A).

``A ⊗ B`` ranks routes by A first and breaks ties with B — the algebraic
rendering of BGP's multi-attribute decision process.  Labels and signatures
of the product are pairs; concatenation and filtering are component-wise; a
path prohibited in *either* component is prohibited in the product.

The safety-relevant fact (paper Sec. IV-B, "Policy compositions"): the
lexical product of a monotonic A and a strictly monotonic B is strictly
monotonic.  :mod:`repro.analysis.composition` implements that decision rule;
this module only provides the product algebra itself.
"""

from __future__ import annotations

from typing import Sequence

from .base import PHI, Label, Pref, RoutingAlgebra, Signature
from .extended import ExtendedAlgebra


class LexicalProduct(ExtendedAlgebra):
    """The lexical product ``A ⊗ B`` of two algebras.

    Product signatures and labels are 2-tuples ``(a_part, b_part)``.  The
    product of more than two algebras is expressed by nesting.
    """

    def __init__(self, first: RoutingAlgebra, second: RoutingAlgebra,
                 name: str | None = None):
        self.first = first
        self.second = second
        self.name = name or f"{first.name}(x){second.name}"

    @property
    def components(self) -> tuple[RoutingAlgebra, RoutingAlgebra]:
        return (self.first, self.second)

    # -- operational ------------------------------------------------------------

    def preference(self, s1: Signature, s2: Signature) -> Pref:
        if s1 is PHI and s2 is PHI:
            return Pref.EQUAL
        if s1 is PHI:
            return Pref.WORSE
        if s2 is PHI:
            return Pref.BETTER
        head = self.first.preference(s1[0], s2[0])
        if head is not Pref.EQUAL:
            return head
        return self.second.preference(s1[1], s2[1])

    def labels(self) -> Sequence[Label]:
        return [(la, lb) for la in self.first.labels()
                for lb in self.second.labels()]

    def signatures(self) -> Sequence[Signature] | None:
        sa = self.first.signatures()
        sb = self.second.signatures()
        if sa is None or sb is None:
            return None
        return [(a, b) for a in sa for b in sb]

    def origin_signature(self, label: Label) -> Signature:
        la, lb = label
        return (self.first.origin_signature(la),
                self.second.origin_signature(lb))

    # -- extended operators ------------------------------------------------------

    def _component_op(self, algebra: RoutingAlgebra, op: str, label: Label,
                      sig: Signature) -> bool:
        if isinstance(algebra, ExtendedAlgebra):
            return getattr(algebra, op)(label, sig)
        return True

    def import_allows(self, label: Label, sig: Signature) -> bool:
        return (self._component_op(self.first, "import_allows", label[0], sig[0])
                and self._component_op(self.second, "import_allows",
                                       label[1], sig[1]))

    def export_allows(self, label: Label, sig: Signature) -> bool:
        return (self._component_op(self.first, "export_allows", label[0], sig[0])
                and self._component_op(self.second, "export_allows",
                                       label[1], sig[1]))

    def concat(self, label: Label, sig: Signature) -> Signature:
        a = _concat_component(self.first, label[0], sig[0])
        b = _concat_component(self.second, label[1], sig[1])
        if a is PHI or b is PHI:
            return PHI
        return (a, b)

    def reverse_label(self, label: Label) -> Label:
        return (_reverse_component(self.first, label[0]),
                _reverse_component(self.second, label[1]))

    def oplus(self, label: Label, sig: Signature) -> Signature:
        if sig is PHI:
            return PHI
        a = self.first.oplus(label[0], sig[0])
        b = self.second.oplus(label[1], sig[1])
        if a is PHI or b is PHI:
            return PHI
        return (a, b)

    def sample_signatures(self, count: int = 16) -> list[Signature]:
        sa = self.first.sample_signatures(count)
        sb = self.second.sample_signatures(count)
        return [(a, b) for a in sa for b in sb][:count]


def _concat_component(algebra: RoutingAlgebra, label: Label,
                      sig: Signature) -> Signature:
    if isinstance(algebra, ExtendedAlgebra):
        return algebra.concat(label, sig)
    return algebra.oplus(label, sig)


def _reverse_component(algebra: RoutingAlgebra, label: Label) -> Label:
    if isinstance(algebra, ExtendedAlgebra):
        return algebra.reverse_label(label)
    return label
