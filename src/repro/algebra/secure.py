"""Secure-routing algebra transformers: ROV and BGPsec over any algebra.

Origin validation (RPKI route-origin validation) and path verification
(BGPsec-style) are modelled as algebra *transformers*: a
:class:`SecureAlgebra` wraps any existing algebra and lifts its
signatures and labels into a secured space —

* signatures become ``(state, penalty, base_sig)`` where ``state`` is the
  route's ground-truth validation outcome (``"ok"`` valid, ``"nf"``
  not-found, ``"bad"`` invalid — a forged origination) and ``penalty``
  in ``{0, 1}`` is the *observable* deprioritization bit;
* labels become ``(deploy_bit, base_label)`` where ``deploy_bit`` records
  whether the **importing** node has deployed validation (per-node
  deployment bitmaps materialize to per-directed-link bits), plus the
  origin-only pseudo-label ``("hijack", base_label)`` marking a forged
  origination by an attacker.

Preference is lexicographic on ``(penalty, base preference)`` — the
validation *state* is deliberately invisible to preference: a node that
has not deployed validation cannot act on it, and a deployed node acts
through its import filter (``mode="filter"``) or through the penalty bit
(``mode="deprioritize"``), never by peeking at ground truth.  Because the
penalty is monotone non-decreasing along a path and ties fall through to
the wrapped algebra, the transformer preserves strict monotonicity of the
base — :func:`repro.analysis.composition.analyze_secure` turns that into
a tier-0 certificate, and the batch backend's rank-kernel tabulation
keeps working unchanged over the lifted (finite-vocabulary) signatures.

Modelling choices, documented for the threat model
(``campaigns/README.md``):

* **Sticky penalty.** Once any deployed node on the path deprioritizes a
  route, the penalty stays set downstream.  Real-world local-pref is not
  transitive; resetting the penalty per hop, however, would break strict
  monotonicity (a worse route could become preferred again), so the
  transitive reading is the one the safety argument supports.
* **ROV vs BGPsec.** ``variant="rov"`` acts on ``"bad"`` routes only
  (invalid origins); ``variant="bgpsec"`` acts on both ``"bad"`` and
  ``"nf"`` — path validation can only *prove* validity, so unverifiable
  routes are treated as suspect.
* **ROA coverage** is an algebra-level flag: with ``roa=True`` the victim
  prefix has a ROA, so legitimate originations validate ``"ok"`` and
  forged ones ``"bad"``; with ``roa=False`` both come up ``"nf"`` (the
  undeployed-RPKI world where ROV cannot distinguish them).
* Export filtering and origination are never deployment-gated — a
  hijacker by definition ignores validation, and export policy belongs
  to the wrapped algebra.
"""

from __future__ import annotations

from typing import Sequence

from .base import Label, PHI, Pref, RoutingAlgebra, Signature
from .extended import ExtendedAlgebra

#: Validation states carried as ground truth in secured signatures.
VALID = "ok"
NOT_FOUND = "nf"
INVALID = "bad"
STATES = (VALID, NOT_FOUND, INVALID)

#: First label component marking a forged (attacker) origination.
HIJACK = "hijack"

VARIANTS = ("rov", "bgpsec")
MODES = ("filter", "deprioritize")


class SecureAlgebra(ExtendedAlgebra):
    """Wrap ``base`` with partial-deployment origin/path validation.

    ``variant`` picks which states a deployed node reacts to, ``mode``
    picks how it reacts (drop at import vs set the penalty bit), ``roa``
    says whether the destination prefix is covered by a ROA.
    """

    def __init__(self, base: RoutingAlgebra, *, variant: str = "rov",
                 mode: str = "filter", roa: bool = True,
                 name: str | None = None):
        if variant not in VARIANTS:
            raise ValueError(f"unknown secure variant {variant!r}; "
                             f"choose from {VARIANTS}")
        if mode not in MODES:
            raise ValueError(f"unknown secure mode {mode!r}; "
                             f"choose from {MODES}")
        self.base = base
        self.variant = variant
        self.mode = mode
        self.roa = bool(roa)
        self._blocked = (INVALID,) if variant == "rov" \
            else (INVALID, NOT_FOUND)
        self.name = name or f"{variant}-{mode}:{base.name}"

    # -- label constructors ---------------------------------------------------

    @staticmethod
    def link_label(base_label: Label, deployed: bool) -> Label:
        """The secured label of a directed link whose *importer* is
        (or is not) a validation deployer."""
        return (1 if deployed else 0, base_label)

    @staticmethod
    def hijack_label(base_label: Label) -> Label:
        """Origin-only pseudo-label for a forged origination."""
        return (HIJACK, base_label)

    def blocked_states(self) -> tuple[str, ...]:
        """States a deployed node filters/deprioritizes under ``variant``."""
        return self._blocked

    # -- operational interface ------------------------------------------------

    def preference(self, s1: Signature, s2: Signature) -> Pref:
        if s1 is PHI and s2 is PHI:
            return Pref.EQUAL
        if s1 is PHI:
            return Pref.WORSE
        if s2 is PHI:
            return Pref.BETTER
        p1, p2 = s1[1], s2[1]
        if p1 < p2:
            return Pref.BETTER
        if p1 > p2:
            return Pref.WORSE
        return self.base.preference(s1[2], s2[2])

    def labels(self) -> Sequence[Label]:
        return [(bit, label) for bit in (0, 1)
                for label in self.base.labels()]

    def signatures(self) -> Sequence[Signature] | None:
        base_sigs = self.base.signatures()
        if base_sigs is None:
            return None
        return [(state, penalty, sig) for state in STATES
                for penalty in (0, 1) for sig in base_sigs]

    def origin_signature(self, label: Label) -> Signature:
        bit, base_label = label
        base_sig = self.base.origin_signature(base_label)
        if base_sig is PHI:
            return PHI
        if bit == HIJACK:
            state = INVALID if self.roa else NOT_FOUND
        else:
            state = VALID if self.roa else NOT_FOUND
        return (state, 0, base_sig)

    def sample_signatures(self, count: int = 16) -> list[Signature]:
        base_samples = self.base.sample_signatures(count)
        samples = []
        for i, base_sig in enumerate(base_samples):
            samples.append((STATES[i % len(STATES)], i % 2, base_sig))
        return samples[:count]

    # -- extended operators ---------------------------------------------------

    def import_allows(self, label: Label, sig: Signature) -> bool:
        bit, base_label = label
        state, _penalty, base_sig = sig
        if not self._base_import(base_label, base_sig):
            return False
        if self.mode == "filter" and bit == 1 and state in self._blocked:
            return False
        return True

    def concat(self, label: Label, sig: Signature) -> Signature:
        bit, base_label = label
        state, penalty, base_sig = sig
        extended = self._base_concat(base_label, base_sig)
        if extended is PHI:
            return PHI
        if self.mode == "deprioritize" and bit == 1 \
                and state in self._blocked:
            penalty = 1
        return (state, penalty, extended)

    def export_allows(self, label: Label, sig: Signature) -> bool:
        _bit, base_label = label
        return self._base_export(base_label, sig[2])

    def reverse_label(self, label: Label) -> Label:
        bit, base_label = label
        if isinstance(self.base, ExtendedAlgebra):
            base_label = self.base.reverse_label(base_label)
        # The bit is the *importer's* deployment status; the reverse
        # direction has a different importer, but export (the only
        # consumer of reversed labels) never consults the bit.
        return (bit, base_label)

    # -- base-algebra shims (the base need not be an ExtendedAlgebra) ---------

    def _base_import(self, label: Label, sig: Signature) -> bool:
        if isinstance(self.base, ExtendedAlgebra):
            return self.base.import_allows(label, sig)
        return True

    def _base_concat(self, label: Label, sig: Signature) -> Signature:
        if isinstance(self.base, ExtendedAlgebra):
            return self.base.concat(label, sig)
        return self.base.oplus(label, sig)

    def _base_export(self, label: Label, sig: Signature) -> bool:
        if isinstance(self.base, ExtendedAlgebra):
            return self.base.export_allows(label, sig)
        return True


def hijacked_route(path: tuple, attacker: str) -> bool:
    """Did this route originate at the attacker's forged announcement?

    The attacker is drawn from the non-neighbors of the destination, so a
    legitimate path can never have it in the penultimate position — the
    test identifies forged routes across every backend without consulting
    signature internals (states are unreliable: with ``roa=False`` both
    legitimate and forged routes carry ``"nf"``).
    """
    return len(path) >= 2 and path[-2] == attacker
