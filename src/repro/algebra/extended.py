"""Extended routing algebra with separate import / export filters (Sec. III-A).

The original algebra's single ⊕ cannot say *which* node filters a route —
a distinction that matters when generating a distributed implementation.
FSR replaces ⊕ with three functions:

* ``⊕I`` — import filter, applied by the *receiving* node,
* ``⊕P`` — plain concatenation, generating the new signature,
* ``⊕E`` — export filter, applied by the *sending* node.

Label convention
----------------

Every ordered node pair ``(u, v)`` carries a label ``L(u, v)`` describing
**what v is to u** (e.g. in Gao-Rexford: ``c`` when v is u's customer).  All
three operators here are indexed by the label *toward the other endpoint of
the operation*:

* ``import_allows(L(u, v), s)`` — u receiving from v,
* ``concat(L(u, v), s)`` — u classifying a route learned from v,
* ``export_allows(L(v, n), s)`` — v sending to n.

This is self-consistent and is what the generated GPV rules use directly.
(The paper's printed ⊕E table is indexed by the *reverse* label — its row
``c`` is our row ``p``; the combined ⊕ tables agree exactly.)

Combining back to a single ⊕ for analysis (paper Sec. III-A): for the
importer-side label ``l``,

    ⊕(l, s) = φ   if not export_allows(reverse(l), s) or not import_allows(l, s)
    ⊕(l, s) = concat(l, s)   otherwise

because when u imports from v over a link u-side-labelled ``l``, the exporter
v sees u through the reverse label ``l̄`` (bilateral relationships: ``c̄ = p``,
``p̄ = c``, ``r̄ = r``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .base import (
    PHI,
    Label,
    MonoEntry,
    Pref,
    PrefStatement,
    Rel,
    RoutingAlgebra,
    Signature,
)


class ExtendedAlgebra(RoutingAlgebra):
    """Algebra with distinguished ⊕I / ⊕P / ⊕E operators.

    Subclasses implement the three operators plus :meth:`reverse_label`;
    the combined ⊕ used by the analyzer is derived automatically.
    """

    # -- the three operators -------------------------------------------------

    def import_allows(self, label: Label, sig: Signature) -> bool:
        """⊕I: may the local node import a route with ``sig`` over ``label``?"""
        return True

    def concat(self, label: Label, sig: Signature) -> Signature:
        """⊕P: signature of the one-link extension (never applies filters)."""
        raise NotImplementedError

    def export_allows(self, label: Label, sig: Signature) -> bool:
        """⊕E: may the local node export a route with ``sig`` toward ``label``?"""
        return True

    def reverse_label(self, label: Label) -> Label:
        """l̄: the label of the reverse direction of a link labelled ``l``."""
        return label

    # -- combined ⊕ -----------------------------------------------------------

    def oplus(self, label: Label, sig: Signature) -> Signature:
        """Combined ⊕ per Sec. III-A (filters folded in)."""
        if sig is PHI:
            return PHI
        if not self.export_allows(self.reverse_label(label), sig):
            return PHI
        if not self.import_allows(label, sig):
            return PHI
        return self.concat(label, sig)


@dataclass
class AlgebraTables:
    """Finite tables defining an :class:`TableAlgebra`.

    ``preference`` maps each non-φ signature to an integer rank — smaller is
    more preferred; equal ranks are ties (the paper's ``P = R``).
    ``concat`` maps ``(label, sig) -> sig'``; missing entries default to φ.
    ``import_filter`` / ``export_filter`` contain the *filtered* pairs
    ``(label, sig)`` (i.e. entries mapped to F in the paper's tables).
    ``reverse`` maps each label to its reverse-direction label.
    ``origination`` maps a label to the signature of a one-hop path over it.
    """

    labels: Sequence[Label]
    signatures: Sequence[Signature]
    preference: Mapping[Signature, int]
    concat: Mapping[tuple[Label, Signature], Signature]
    reverse: Mapping[Label, Label]
    import_filter: frozenset = frozenset()
    export_filter: frozenset = frozenset()
    origination: Mapping[Label, Signature] = field(default_factory=dict)


class TableAlgebra(ExtendedAlgebra):
    """An extended algebra fully specified by finite lookup tables.

    This is the workhorse for guideline policies (Gao-Rexford A/B, backup
    routing, ...): construct the tables once and every interface — runtime
    comparator, combined ⊕, analyzer enumeration, NDlog codegen — is served
    from them.
    """

    def __init__(self, name: str, tables: AlgebraTables):
        self.name = name
        self._t = tables
        unknown = set(tables.preference) - set(tables.signatures)
        if unknown:
            raise ValueError(f"preference ranks for unknown signatures: {unknown}")
        missing = set(tables.signatures) - set(tables.preference)
        if missing:
            raise ValueError(f"signatures missing a preference rank: {missing}")

    @property
    def tables(self) -> AlgebraTables:
        return self._t

    # -- RoutingAlgebra interface ---------------------------------------------

    def preference(self, s1: Signature, s2: Signature) -> Pref:
        if s1 is PHI and s2 is PHI:
            return Pref.EQUAL
        if s1 is PHI:
            return Pref.WORSE
        if s2 is PHI:
            return Pref.BETTER
        r1, r2 = self._t.preference[s1], self._t.preference[s2]
        if r1 < r2:
            return Pref.BETTER
        if r1 > r2:
            return Pref.WORSE
        return Pref.EQUAL

    def labels(self) -> Sequence[Label]:
        return list(self._t.labels)

    def signatures(self) -> Sequence[Signature]:
        return list(self._t.signatures)

    def origin_signature(self, label: Label) -> Signature:
        if label in self._t.origination:
            return self._t.origination[label]
        raise KeyError(f"no origination signature for label {label!r}")

    # -- ExtendedAlgebra interface ----------------------------------------------

    def concat(self, label: Label, sig: Signature) -> Signature:
        return self._t.concat.get((label, sig), PHI)

    def import_allows(self, label: Label, sig: Signature) -> bool:
        return (label, sig) not in self._t.import_filter

    def export_allows(self, label: Label, sig: Signature) -> bool:
        return (label, sig) not in self._t.export_filter

    def reverse_label(self, label: Label) -> Label:
        return self._t.reverse[label]

    # -- declarative interface ----------------------------------------------

    def preference_statements(self) -> list[PrefStatement]:
        """Pairwise statements among declared signatures, rank-derived."""
        statements = []
        sigs = list(self._t.signatures)
        for i, s1 in enumerate(sigs):
            for s2 in sigs[i + 1:]:
                pref = self.preference(s1, s2)
                if pref is Pref.BETTER:
                    statements.append(PrefStatement(s1, Rel.STRICT, s2, "pref"))
                elif pref is Pref.WORSE:
                    statements.append(PrefStatement(s2, Rel.STRICT, s1, "pref"))
                else:
                    statements.append(PrefStatement(s1, Rel.EQUAL, s2, "pref"))
        return statements

    def mono_entries(self) -> list[MonoEntry]:
        entries = []
        for label in self._t.labels:
            for sig in self._t.signatures:
                result = self.oplus(label, sig)
                if result is not PHI:
                    entries.append(MonoEntry(label, sig, result, "mono"))
        return entries
