"""The BGP gadget zoo (paper Secs. III-B, IV-C, VI-B, VI-C).

All gadgets are :class:`~repro.algebra.spp.SPPInstance` constructors:

* :func:`disagree` — two nodes that each prefer routing through the other;
  converges, but can oscillate between its two stable states (unsafe by the
  strict-monotonicity test);
* :func:`bad_gadget` — the canonical three-node instance with **no** stable
  solution; never converges;
* :func:`good_gadget` — a cycle-broken variant that is provably safe;
* :func:`ibgp_figure3` — the six-node iBGP route-reflection instance of the
  paper's Figure 3 (three reflectors a/b/c, three egresses d/e/f holding
  external routes r1/r2/r3); its encoding yields exactly 18 constraints and
  is unsat;
* :func:`ibgp_figure3_fixed` — the repaired configuration (each reflector
  prefers its own client) which is sat;
* :func:`replicate` — k disjoint copies of a gadget sharing one destination
  (the Sec. VI-C scaling workload);
* :func:`disagree_chain` — a row of DISAGREE pairs with a configurable
  fraction of conflicting links (the Sec. VI-C convergence workload).
"""

from __future__ import annotations

from typing import Callable

from .spp import Path, SPPInstance

#: Conventional single destination used by the eBGP gadgets.
DEST = "0"


def disagree() -> SPPInstance:
    """DISAGREE: two stable states, oscillates between them before settling."""
    permitted = {
        "1": [("1", "2", DEST), ("1", DEST)],
        "2": [("2", "1", DEST), ("2", DEST)],
    }
    return SPPInstance.build("disagree", DEST, permitted)


def bad_gadget() -> SPPInstance:
    """BAD GADGET: three nodes in a preference cycle; no stable solution."""
    permitted = {
        "1": [("1", "2", DEST), ("1", DEST)],
        "2": [("2", "3", DEST), ("2", DEST)],
        "3": [("3", "1", DEST), ("3", DEST)],
    }
    return SPPInstance.build("bad-gadget", DEST, permitted)


def good_gadget() -> SPPInstance:
    """GOOD GADGET: the preference cycle of BAD GADGET broken at node 3.

    Nodes 1 and 2 still prefer routing through their clockwise neighbor,
    but node 3 prefers its direct route, so a unique stable assignment
    exists and the strict-monotonicity encoding is satisfiable.
    """
    permitted = {
        "1": [("1", "2", DEST), ("1", DEST)],
        "2": [("2", "3", DEST), ("2", DEST)],
        "3": [("3", DEST), ("3", "1", DEST)],
    }
    return SPPInstance.build("good-gadget", DEST, permitted)


def _figure3(prefer_other_client: bool) -> SPPInstance:
    """Common constructor for the Figure-3 iBGP instance and its fix.

    Reflectors a, b, c form a full mesh; clients d, e, f hang off a, b, c
    respectively and each holds an externally learned route (r1, r2, r3) to
    the destination, modelled as the virtual node ``0``.
    """
    a, b, c, d, e, f = "a", "b", "c", "d", "e", "f"
    O = DEST

    aber2: Path = (a, b, e, O)
    adr1: Path = (a, d, O)
    bcfr3: Path = (b, c, f, O)
    ber2: Path = (b, e, O)
    cadr1: Path = (c, a, d, O)
    cfr3: Path = (c, f, O)
    r1: Path = (d, O)
    daber2: Path = (d, a, b, e, O)
    dacfr3: Path = (d, a, c, f, O)
    r2: Path = (e, O)
    ebadr1: Path = (e, b, a, d, O)
    ebcfr3: Path = (e, b, c, f, O)
    r3: Path = (f, O)
    fcber2: Path = (f, c, b, e, O)
    fcadr1: Path = (f, c, a, d, O)

    if prefer_other_client:
        # The broken configuration: each reflector prefers the route through
        # another reflector's client over its own client's route.
        reflector_rankings = {
            a: [aber2, adr1],
            b: [bcfr3, ber2],
            c: [cadr1, cfr3],
        }
        name = "ibgp-figure3"
    else:
        reflector_rankings = {
            a: [adr1, aber2],
            b: [ber2, bcfr3],
            c: [cfr3, cadr1],
        }
        name = "ibgp-figure3-fixed"

    permitted = {
        **reflector_rankings,
        d: [r1, daber2, dacfr3],
        e: [r2, ebadr1, ebcfr3],
        f: [r3, fcber2, fcadr1],
    }
    display = {
        aber2: "aber2", adr1: "adr1", bcfr3: "bcfr3", ber2: "ber2",
        cadr1: "cadr1", cfr3: "cfr3", r1: "r1", daber2: "daber2",
        dacfr3: "dacfr3", r2: "r2", ebadr1: "ebadr1", ebcfr3: "ebcfr3",
        r3: "r3", fcber2: "fcber2", fcadr1: "fcadr1",
    }
    # The reflector full mesh includes sessions not used by any permitted
    # path in the fixed variant (e.g. a-c).
    extra = [(a, b), (a, c), (b, c)]
    return SPPInstance.build(name, O, permitted, extra_edges=extra,
                             display_names=display)


def ibgp_figure3() -> SPPInstance:
    """The paper's Figure-3 iBGP instance (unsafe: reflector preference cycle)."""
    return _figure3(prefer_other_client=True)


def ibgp_figure3_fixed() -> SPPInstance:
    """Figure 3 with each reflector preferring its own client (safe)."""
    return _figure3(prefer_other_client=False)


#: Name → constructor for the base zoo — the single source of truth the
#: CLI and the campaign generator both draw from.
GADGET_ZOO: dict[str, Callable[[], SPPInstance]] = {
    "good": good_gadget,
    "bad": bad_gadget,
    "disagree": disagree,
    "figure3": ibgp_figure3,
    "figure3-fixed": ibgp_figure3_fixed,
}


def replicate(instance: SPPInstance, copies: int) -> SPPInstance:
    """Build ``copies`` disjoint renamed copies sharing one destination.

    Node ``n`` of copy ``i`` becomes ``n#i``.  This is the Sec. VI-C scaling
    workload ("the input topology contains one or more gadgets on a subset
    of the nodes").
    """
    if copies < 1:
        raise ValueError("need at least one copy")
    permitted: dict[str, list[Path]] = {}
    for i in range(copies):
        def rename(node: str, i: int = i) -> str:
            return node if node == instance.destination else f"{node}#{i}"

        for node, paths in instance.permitted.items():
            renamed = [tuple(rename(n) for n in path) for path in paths]
            permitted[rename(node)] = renamed
    return SPPInstance.build(
        f"{instance.name}-x{copies}", instance.destination, permitted)


def disagree_chain(pairs: int, conflict_fraction: float = 1.0) -> SPPInstance:
    """A row of node pairs attached to one destination.

    ``conflict_fraction`` of the pairs are DISAGREE pairs (each node prefers
    the route through its partner — a "conflicting link" in the paper's
    Sec. VI-C terminology); the rest prefer their direct routes.  Lowering
    the fraction speeds convergence, which is the DISAGREE experiment's
    independent variable.
    """
    if pairs < 1:
        raise ValueError("need at least one pair")
    if not 0.0 <= conflict_fraction <= 1.0:
        raise ValueError("conflict_fraction must be within [0, 1]")
    conflicted = round(pairs * conflict_fraction)
    permitted: dict[str, list[Path]] = {}
    for i in range(pairs):
        left, right = f"L{i}", f"R{i}"
        direct_l: Path = (left, DEST)
        direct_r: Path = (right, DEST)
        via_r: Path = (left, right, DEST)
        via_l: Path = (right, left, DEST)
        if i < conflicted:
            permitted[left] = [via_r, direct_l]
            permitted[right] = [via_l, direct_r]
        else:
            permitted[left] = [direct_l, via_r]
            permitted[right] = [direct_r, via_l]
    return SPPInstance.build(
        f"disagree-chain-{pairs}-{conflict_fraction:.2f}", DEST, permitted)
