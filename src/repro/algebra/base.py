"""Core routing-algebra abstractions (paper Sec. II).

An abstract routing algebra is a tuple ⟨Σ, ⪯, L, ⊕⟩:

* **Σ** — path signatures; a special element φ (:data:`PHI`) marks prohibited
  paths and is strictly the least preferred signature;
* **⪯** — a total preference relation over Σ (smaller = more preferred);
* **L** — link labels;
* **⊕** — concatenation: ``⊕(l, s)`` is the signature of the one-link
  extension of a path with signature ``s`` over a link labelled ``l``.

Two views of an algebra coexist in FSR and both are modelled here:

* the *operational* view used by protocol engines: a total comparator
  (:meth:`RoutingAlgebra.preference`) plus the ⊕ function;
* the *declarative* view used by the safety analyzer: a finite list of
  preference statements (:meth:`RoutingAlgebra.preference_statements`) and ⊕
  entries (:meth:`RoutingAlgebra.mono_entries`) that are compiled one-to-one
  into solver constraints (paper Sec. IV-B, steps 1-3).

Closed-form algebras over infinite Σ (e.g. shortest hop-count) cannot
enumerate entries; they instead carry an analytic strict-monotonicity
certificate (:attr:`RoutingAlgebra.closed_form_monotonicity`), the same proof
obligation the paper discharges with a Yices ``forall``.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Iterator, Sequence

Signature = Hashable
Label = Hashable


class _Phi:
    """Singleton signature for prohibited paths (φ).

    φ compares strictly worse than every other signature and is absorbing
    under concatenation: ``⊕(l, φ) = φ`` for every label ``l``.
    """

    _instance: "_Phi | None" = None

    def __new__(cls) -> "_Phi":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "PHI"

    def __reduce__(self):  # keep singleton identity across pickling
        return (_Phi, ())


#: The prohibited-path signature φ.
PHI = _Phi()


class Pref(enum.IntEnum):
    """Outcome of comparing two signatures under ⪯."""

    BETTER = -1  # s1 ≺ s2: s1 strictly preferred
    EQUAL = 0    # s1 ~ s2: equally preferred (tie)
    WORSE = 1    # s2 ≺ s1


class Rel(enum.Enum):
    """Relation used in a declarative preference statement."""

    STRICT = "<"   # s1 ≺ s2
    WEAK = "<="    # s1 ⪯ s2
    EQUAL = "="    # s1 ~ s2


@dataclass(frozen=True)
class PrefStatement:
    """A declared preference ``s1 REL s2`` (paper Sec. IV-B, step 2).

    ``origin`` documents where the statement came from (e.g. ``"rank[a]"``)
    so that unsat cores can be mapped back to the configuration.
    """

    s1: Signature
    rel: Rel
    s2: Signature
    origin: str = ""

    def __str__(self) -> str:
        return f"{self.s1} {self.rel.value} {self.s2}"


@dataclass(frozen=True)
class MonoEntry:
    """One ⊕ table entry ``result = label ⊕ sig`` with ``result != φ``.

    Each such entry yields one strict-monotonicity constraint
    ``sig < result`` (paper Sec. IV-B, step 3).  Entries producing φ are
    omitted: φ is by definition strictly worse than everything, so the
    constraint ``s < φ`` always holds.
    """

    label: Label
    sig: Signature
    result: Signature
    origin: str = ""

    def __str__(self) -> str:
        return f"{self.label} (+) {self.sig} = {self.result}"


@dataclass(frozen=True)
class ClosedFormCertificate:
    """Analytic monotonicity certificate for infinite-Σ algebras.

    ``strictly_monotonic`` / ``monotonic`` record what the algebra's author
    proves analytically; ``justification`` is the human-readable argument
    (e.g. "⊕ adds a strictly positive label to an integer signature").  The
    analyzer trusts the certificate but cross-checks it on a finite sample
    via :meth:`RoutingAlgebra.sample_signatures`.
    """

    strictly_monotonic: bool
    monotonic: bool
    justification: str


class RoutingAlgebra(ABC):
    """Base class for all routing algebras.

    Subclasses must implement the operational interface (``preference``,
    ``oplus``, ``labels``) and, for finite algebras, the enumeration
    interface used by the analyzer.
    """

    #: Short identifier used in reports and NDlog codegen.
    name: str = "algebra"

    # -- operational interface (used by protocol engines) -------------------

    @abstractmethod
    def preference(self, s1: Signature, s2: Signature) -> Pref:
        """Total comparison of two signatures; φ is always strictly worst."""

    def better(self, s1: Signature, s2: Signature) -> bool:
        """True iff ``s1`` is strictly preferred to ``s2``."""
        return self.preference(s1, s2) is Pref.BETTER

    def best(self, candidates: Iterable[Signature]) -> Signature:
        """Select the most preferred signature (φ if none or all prohibited)."""
        winner: Signature = PHI
        for sig in candidates:
            if sig is PHI:
                continue
            if winner is PHI or self.better(sig, winner):
                winner = sig
        return winner

    @abstractmethod
    def oplus(self, label: Label, sig: Signature) -> Signature:
        """Combined concatenation ⊕ (filters folded in; may return φ)."""

    @abstractmethod
    def labels(self) -> Sequence[Label]:
        """The label set L (always finite in FSR's inputs)."""

    def origin_signature(self, label: Label) -> Signature:
        """Signature of a one-hop path over a link labelled ``label``.

        This is the origination set of the algebra (paper Sec. V-B, step 4).
        Defaults to ``⊕(label, origin_seed())``.
        """
        return self.oplus(label, self.origin_seed())

    def origin_seed(self) -> Signature:
        """The signature of the trivial (zero-length) path at the origin."""
        raise NotImplementedError(
            f"{type(self).__name__} must define origin_seed() or override "
            "origin_signature()"
        )

    # -- declarative interface (used by the safety analyzer) ----------------

    def signatures(self) -> Sequence[Signature] | None:
        """Finite signature set Σ \\ {φ}, or None when Σ is infinite."""
        return None

    @property
    def is_finite(self) -> bool:
        """True when Σ is finite and entries can be enumerated."""
        return self.signatures() is not None

    def preference_statements(self) -> list[PrefStatement]:
        """Declared preference relations (analyzer step 2).

        Default: derive every pairwise relation among the finite signatures
        from the comparator.  This matches the paper's guideline encodings
        (e.g. Gao-Rexford's ``C ≺ R``, ``C ≺ P``, ``R = P``); algebras with
        partial declared orders (SPP instances) override this.
        """
        sigs = self.signatures()
        if sigs is None:
            raise NotImplementedError(
                f"{type(self).__name__} has infinite Σ; the analyzer uses its "
                "closed-form certificate instead"
            )
        statements = []
        ordered = list(sigs)
        for i, s1 in enumerate(ordered):
            for s2 in ordered[i + 1:]:
                pref = self.preference(s1, s2)
                if pref is Pref.BETTER:
                    statements.append(PrefStatement(s1, Rel.STRICT, s2, "pref"))
                elif pref is Pref.WORSE:
                    statements.append(PrefStatement(s2, Rel.STRICT, s1, "pref"))
                else:
                    statements.append(PrefStatement(s1, Rel.EQUAL, s2, "pref"))
        return statements

    def mono_entries(self) -> list[MonoEntry]:
        """All non-φ ⊕ entries (analyzer step 3).

        Default: enumerate ``labels() × signatures()``.
        """
        sigs = self.signatures()
        if sigs is None:
            raise NotImplementedError(
                f"{type(self).__name__} has infinite Σ; the analyzer uses its "
                "closed-form certificate instead"
            )
        entries = []
        for label in self.labels():
            for sig in sigs:
                result = self.oplus(label, sig)
                if result is not PHI:
                    entries.append(MonoEntry(label, sig, result, "mono"))
        return entries

    # -- closed-form support -------------------------------------------------

    @property
    def closed_form_monotonicity(self) -> ClosedFormCertificate | None:
        """Analytic certificate for infinite-Σ algebras (None if finite)."""
        return None

    def sample_signatures(self, count: int = 16) -> list[Signature]:
        """Finite sample of Σ used to sanity-check closed-form certificates."""
        sigs = self.signatures()
        if sigs is not None:
            return list(sigs)[:count]
        raise NotImplementedError(
            f"{type(self).__name__} must provide sample_signatures()"
        )

    # -- misc ----------------------------------------------------------------

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def rank_sort(algebra: RoutingAlgebra, sigs: Iterable[Signature]) -> list[Signature]:
    """Sort signatures from most to least preferred (φ last), stably."""
    import functools

    def cmp(a: Signature, b: Signature) -> int:
        return int(algebra.preference(a, b))

    return sorted(sigs, key=functools.cmp_to_key(cmp))


def rank_routes(better, routes: Iterable[tuple],
                tie_key=None) -> list[tuple]:
    """``(sig, path)`` pairs best-first — the one k-best ranking order.

    Non-φ entries only, ordered by the strict-preference predicate
    ``better``, ties broken deterministically by ``(len(path), path)``
    (shorter first), deduplicated by path.  Every component that ranks a
    candidate pool — the native engine's RIB, the NDlog ranked aggregate,
    the NDlog session's route-set snapshot — must use THIS order: the
    k-cutoff makes any divergence in tie-breaking observable as a phantom
    cross-backend mismatch.  ``tie_key`` customizes how a path maps to its
    tie-break key (the ranked aggregate ranks generic trailing columns).
    """
    import functools

    if tie_key is None:
        tie_key = lambda path: (len(path), path)  # noqa: E731
    seen: set = set()
    unique: list[tuple] = []
    for sig, path in routes:
        if sig is PHI or path in seen:
            continue
        seen.add(path)
        unique.append((sig, path))

    def compare(r1: tuple, r2: tuple) -> int:
        if better(r1[0], r2[0]):
            return -1
        if better(r2[0], r1[0]):
            return 1
        return -1 if tie_key(r1[1]) <= tie_key(r2[1]) else 1

    unique.sort(key=functools.cmp_to_key(compare))
    return unique


def iter_pairs(items: Sequence[Any]) -> Iterator[tuple[Any, Any]]:
    """All unordered pairs of a sequence (helper for tests)."""
    for i, a in enumerate(items):
        for b in items[i + 1:]:
            yield a, b
