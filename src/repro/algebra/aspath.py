"""AS-path signatures and AS-avoidance filters (paper Sec. III-A).

"For example, if the signature includes the entire AS path, we can easily
specify an import (export) policy that disallows routes that traverse a
particular AS, by expressing ⊕E (⊕I) to output F values whenever a route
passes through a particular AS.  The lexical product can then be used to
compose multiple policies, for instance, combining the Gao-Rexford
guideline with a policy that excludes particular paths by AS."

:class:`AsPathAlgebra` implements exactly that: signatures are the AS
paths themselves (tuples of AS names, most recent first), ranked by
length; import/export filters drop any path traversing a blocked AS.
:func:`gao_rexford_avoiding` builds the composition quoted above.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .base import PHI, ClosedFormCertificate, Label, Pref, Signature
from .extended import ExtendedAlgebra
from .product import LexicalProduct
from .library import gao_rexford_a


class AsPathAlgebra(ExtendedAlgebra):
    """Path signatures with per-AS avoidance filters.

    Labels are the AS names of the *neighbor* the link points at (our
    label convention: ``label(u, v)`` describes v from u's side — here,
    simply v's AS name).  ``⊕P`` prepends the neighbor's AS; shorter paths
    are preferred; ties break lexicographically so the order is total.

    ``import_blocked`` / ``export_blocked`` are AS sets: a route whose
    path traverses any of them is filtered on the respective side.
    """

    name = "as-path"

    def __init__(self, ases: Sequence[str],
                 import_blocked: Iterable[str] = (),
                 export_blocked: Iterable[str] = ()):
        if not ases:
            raise ValueError("need at least one AS label")
        self._ases = list(dict.fromkeys(ases))
        self.import_blocked = frozenset(import_blocked)
        self.export_blocked = frozenset(export_blocked)

    # -- operational -----------------------------------------------------------

    def preference(self, s1: Signature, s2: Signature) -> Pref:
        if s1 is PHI and s2 is PHI:
            return Pref.EQUAL
        if s1 is PHI:
            return Pref.WORSE
        if s2 is PHI:
            return Pref.BETTER
        k1, k2 = (len(s1), s1), (len(s2), s2)
        if k1 < k2:
            return Pref.BETTER
        if k1 > k2:
            return Pref.WORSE
        return Pref.EQUAL

    def labels(self) -> Sequence[Label]:
        return list(self._ases)

    def origin_seed(self) -> Signature:
        return ()

    # -- extended operators -------------------------------------------------------

    def concat(self, label: Label, sig: Signature) -> Signature:
        if label in sig:
            return PHI  # AS-path loop prevention is native here
        return (label,) + tuple(sig)

    def import_allows(self, label: Label, sig: Signature) -> bool:
        traversed = {label, *sig}
        return not (traversed & self.import_blocked)

    def export_allows(self, label: Label, sig: Signature) -> bool:
        return not (set(sig) & self.export_blocked)

    def reverse_label(self, label: Label) -> Label:
        # The reverse direction of a link toward AS x points back at *us*;
        # filters only inspect the traversed set, so identity is safe here.
        return label

    # -- analysis ----------------------------------------------------------------

    @property
    def closed_form_monotonicity(self) -> ClosedFormCertificate:
        return ClosedFormCertificate(
            strictly_monotonic=True,
            monotonic=True,
            justification=(
                "(+) prepends one AS, so every extension is strictly "
                "longer and therefore strictly less preferred"),
        )

    def sample_signatures(self, count: int = 16) -> list[Signature]:
        out: list[Signature] = [()]
        for i in range(1, count):
            out.append(tuple(self._ases[j % len(self._ases)]
                             for j in range(i)))
        return out[:count]


def gao_rexford_avoiding(ases: Sequence[str],
                         blocked: Iterable[str]) -> LexicalProduct:
    """Gao-Rexford guideline A composed with AS-avoidance (paper's example).

    The product is strictly monotonic (guideline A is monotonic, the
    AS-path component strictly so), hence provably safe, while refusing to
    import any route through a blocked AS.
    """
    return LexicalProduct(
        gao_rexford_a(),
        AsPathAlgebra(ases, import_blocked=blocked),
        name="gao-rexford-a(x)as-avoid",
    )
