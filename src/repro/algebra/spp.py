"""Stable Paths Problem instances and their conversion to algebra (Sec. III-B).

An SPP instance is a topology plus, per node, a ranked list of *permitted
paths* to a single destination.  Researchers use tiny instances ("gadgets")
to probe guideline violations; operators extract instances from router
configurations or live protocol runs.

Conversion to algebra (paper Sec. III-B):

* each directed link ``u -> v`` gets a unique label ``l_uv``;
* each permitted path ``p`` gets a unique signature ``r_p``;
* per-node rankings become chains of strict preferences
  ``r_1 ≺ r_2 ≺ ... ≺ r_n``;
* ⊕ is defined exactly on permitted extensions: ``r_{uv∘p} = l_uv ⊕ r_p``
  whenever both ``uv∘p`` and ``p`` are permitted; everything else is φ.

Note the subtlety that fixes the paper's constraint count (18 for the
Figure-3 instance): a permitted path contributes a strict-monotonicity
constraint **only when its tail is itself permitted at the neighbor** —
e.g. ``dacfr3`` yields none because ``acfr3`` is not in a's ranking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .base import (
    PHI,
    Label,
    MonoEntry,
    Pref,
    PrefStatement,
    Rel,
    RoutingAlgebra,
    Signature,
)

#: A path is a tuple of node names from source to the destination.
Path = tuple[str, ...]


class SPPValidationError(ValueError):
    """Raised when an SPP instance is structurally inconsistent."""


@dataclass
class SPPInstance:
    """A Stable Paths Problem instance.

    ``edges`` are undirected node pairs; ``permitted`` maps each node to its
    ranked list of permitted paths, most preferred first.  The destination
    node has the single trivial path ``(destination,)`` implicitly.
    ``display_names`` optionally maps paths to the paper's compact names
    (e.g. ``('a','b','e','0') -> 'aber2'``) for reporting.
    """

    name: str
    destination: str
    edges: set[frozenset] = field(default_factory=set)
    permitted: dict[str, list[Path]] = field(default_factory=dict)
    display_names: dict[Path, str] = field(default_factory=dict)

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def build(name: str, destination: str,
              permitted: Mapping[str, Sequence[Path]],
              extra_edges: Iterable[tuple[str, str]] = (),
              display_names: Mapping[Path, str] | None = None) -> "SPPInstance":
        """Create an instance, deriving the edge set from the paths."""
        edges: set[frozenset] = {frozenset(e) for e in extra_edges}
        for paths in permitted.values():
            for path in paths:
                for u, v in zip(path, path[1:]):
                    edges.add(frozenset((u, v)))
        instance = SPPInstance(
            name=name,
            destination=destination,
            edges=edges,
            permitted={node: list(paths) for node, paths in permitted.items()},
            display_names=dict(display_names or {}),
        )
        instance.validate()
        return instance

    def validate(self) -> None:
        """Check structural consistency; raise :class:`SPPValidationError`."""
        for node, paths in self.permitted.items():
            seen: set[Path] = set()
            for path in paths:
                if not path:
                    raise SPPValidationError(f"{node}: empty path")
                if path[0] != node:
                    raise SPPValidationError(
                        f"{node}: path {path} does not start at {node}")
                if path[-1] != self.destination:
                    raise SPPValidationError(
                        f"{node}: path {path} does not end at destination "
                        f"{self.destination}")
                if len(set(path)) != len(path):
                    raise SPPValidationError(f"{node}: path {path} has a loop")
                if path in seen:
                    raise SPPValidationError(f"{node}: duplicate path {path}")
                seen.add(path)
                for u, v in zip(path, path[1:]):
                    if frozenset((u, v)) not in self.edges:
                        raise SPPValidationError(
                            f"{node}: path {path} uses missing edge {u}-{v}")

    # -- queries ----------------------------------------------------------------

    def nodes(self) -> list[str]:
        """All nodes (destination included), deterministic order."""
        found: dict[str, None] = {self.destination: None}
        for node in sorted(self.permitted):
            found.setdefault(node)
        for edge in self.edges:
            for node in sorted(edge):
                found.setdefault(node)
        return list(found)

    def neighbors(self, node: str) -> list[str]:
        """Adjacent nodes of ``node`` in deterministic order."""
        out = set()
        for edge in self.edges:
            if node in edge:
                other = next(iter(edge - {node}), node)
                out.add(other)
        return sorted(out)

    def rank_of(self, path: Path) -> int:
        """0-based rank of a permitted path at its source node."""
        return self.permitted[path[0]].index(path)

    def is_permitted(self, path: Path) -> bool:
        if path == (self.destination,):
            return True
        return path in self.permitted.get(path[0], [])

    def path_name(self, path: Path) -> str:
        """Compact display name of a path (paper style)."""
        return self.display_names.get(path, "".join(path))

    def all_paths(self) -> list[Path]:
        """Every permitted path in node order then rank order."""
        return [path for node in sorted(self.permitted)
                for path in self.permitted[node]]

    def __str__(self) -> str:
        lines = [f"SPP {self.name} -> {self.destination}"]
        for node in sorted(self.permitted):
            ranked = " > ".join(self.path_name(p) for p in self.permitted[node])
            lines.append(f"  {node}: {ranked}")
        return "\n".join(lines)


class SPPAlgebra(RoutingAlgebra):
    """The algebra an SPP instance converts to (paper Sec. III-B).

    Labels are directed-edge constants ``('l', u, v)``; signatures are the
    permitted paths themselves (φ for everything else).  The declared
    preference relation is the per-node ranking chains only — a *partial*
    order whose total extension is behaviour-preserving (paper's soundness
    argument at the end of Sec. IV-C).
    """

    def __init__(self, instance: SPPInstance):
        instance.validate()
        self.instance = instance
        self.name = f"spp:{instance.name}"
        self._permitted_sets = {
            node: set(paths) for node, paths in instance.permitted.items()
        }

    # -- operational -------------------------------------------------------------

    def preference(self, s1: Signature, s2: Signature) -> Pref:
        if s1 is PHI and s2 is PHI:
            return Pref.EQUAL
        if s1 is PHI:
            return Pref.WORSE
        if s2 is PHI:
            return Pref.BETTER
        # Same-source paths: declared rank.  Distinct sources: an arbitrary
        # but consistent total extension (never exercised by route selection,
        # which only compares candidates at one node).
        if s1[0] == s2[0]:
            r1 = self.instance.rank_of(s1)
            r2 = self.instance.rank_of(s2)
        else:
            r1, r2 = 0, 0
        if r1 != r2:
            return Pref.BETTER if r1 < r2 else Pref.WORSE
        if s1 == s2:
            return Pref.EQUAL
        return Pref.BETTER if s1 < s2 else Pref.WORSE

    def oplus(self, label: Label, sig: Signature) -> Signature:
        if sig is PHI:
            return PHI
        _, u, v = label
        if sig[0] != v:
            return PHI
        extended = (u,) + sig
        if self.instance.is_permitted(extended):
            return extended
        return PHI

    def labels(self) -> Sequence[Label]:
        out = []
        for edge in sorted(self.instance.edges, key=sorted):
            u, v = sorted(edge)
            out.append(("l", u, v))
            out.append(("l", v, u))
        return out

    def origin_signature(self, label: Label) -> Signature:
        _, u, v = label
        if v != self.instance.destination:
            return PHI
        path = (u, v)
        return path if self.instance.is_permitted(path) else PHI

    # -- declarative ---------------------------------------------------------------

    def signatures(self) -> Sequence[Signature]:
        return self.instance.all_paths()

    def preference_statements(self) -> list[PrefStatement]:
        """Per-node ranking chains: ``r_i ≺ r_{i+1}`` (step 2)."""
        statements = []
        for node in sorted(self.instance.permitted):
            ranked = self.instance.permitted[node]
            for hi, lo in zip(ranked, ranked[1:]):
                statements.append(
                    PrefStatement(hi, Rel.STRICT, lo, origin=f"rank[{node}]"))
        return statements

    def mono_entries(self) -> list[MonoEntry]:
        """⊕ entries for permitted paths whose tail is permitted (step 3)."""
        entries = []
        for path in self.instance.all_paths():
            if len(path) < 3:
                continue  # one-hop paths are originations, not extensions
            tail = path[1:]
            if tail in self._permitted_sets.get(tail[0], set()):
                label = ("l", path[0], path[1])
                entries.append(MonoEntry(
                    label, tail, path,
                    origin=f"mono[{path[0]}]",
                ))
        return entries
