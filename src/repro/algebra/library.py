"""Library of concrete routing policies from the paper.

Implements every policy the paper uses as a running example or experiment
input (Table I spectrum plus the case studies):

* :class:`ShortestHopCount` — the Sec. II-A warm-up (closed form, infinite Σ);
* :class:`ShortestPath` — generalisation with positive integer link weights
  (the "IGP-cost" row of Table I when given a concrete topology);
* :class:`BandwidthAlgebra` + :func:`widest_shortest` — the widest
  shortest-path composition mentioned in Sec. II-A;
* :func:`gao_rexford_a` / :func:`gao_rexford_b` — the business-relationship
  guidelines of Sec. II-B / IV-C;
* :func:`safe_backup` — a rendering of Gao-Griffin-Rexford backup routing
  (Sec. IV-C "guidelines that ensure safe backup routing");
* :func:`gao_rexford_with_hopcount` — the composed, provably safe policy the
  paper deploys in the Fig. 4 experiment.
"""

from __future__ import annotations

from typing import Sequence

from .base import (
    PHI,
    ClosedFormCertificate,
    Label,
    Pref,
    RoutingAlgebra,
    Signature,
)
from .extended import AlgebraTables, TableAlgebra
from .product import LexicalProduct


class ShortestHopCount(RoutingAlgebra):
    """Shortest hop-count routing (paper Sec. II-A).

    Σ = positive naturals (path length), L = {1}, ⊕ = integer addition,
    ⪯ = ≤.  Σ is infinite, so safety is established by the closed-form
    certificate rather than entry enumeration — mirroring the paper's
    ``(assert (forall (s::Sig) (< s s+1)))``.
    """

    name = "hop-count"

    def preference(self, s1: Signature, s2: Signature) -> Pref:
        return _int_preference(s1, s2)

    def oplus(self, label: Label, sig: Signature) -> Signature:
        if sig is PHI:
            return PHI
        return label + sig

    def labels(self) -> Sequence[Label]:
        return [1]

    def origin_seed(self) -> Signature:
        return 0

    @property
    def closed_form_monotonicity(self) -> ClosedFormCertificate:
        return ClosedFormCertificate(
            strictly_monotonic=True,
            monotonic=True,
            justification=(
                "(+) adds the strictly positive label 1 to an integer "
                "signature, so s < 1 + s for every s"
            ),
        )

    def sample_signatures(self, count: int = 16) -> list[Signature]:
        return list(range(1, count + 1))


class ShortestPath(RoutingAlgebra):
    """Shortest path with positive integer link weights.

    The "IGP-cost" policy of Table I: preferences are fully determined
    (lower total cost wins) and the label set is the concrete topology's
    weight set.
    """

    name = "shortest-path"

    def __init__(self, weights: Sequence[int] = (1,)):
        bad = [w for w in weights if w <= 0]
        if bad:
            raise ValueError(f"link weights must be positive, got {bad}")
        self._weights = list(dict.fromkeys(weights))

    def preference(self, s1: Signature, s2: Signature) -> Pref:
        return _int_preference(s1, s2)

    def oplus(self, label: Label, sig: Signature) -> Signature:
        if sig is PHI:
            return PHI
        return label + sig

    def labels(self) -> Sequence[Label]:
        return list(self._weights)

    def origin_seed(self) -> Signature:
        return 0

    @property
    def closed_form_monotonicity(self) -> ClosedFormCertificate:
        return ClosedFormCertificate(
            strictly_monotonic=True,
            monotonic=True,
            justification=(
                "(+) adds a strictly positive weight to an integer signature"
            ),
        )

    def sample_signatures(self, count: int = 16) -> list[Signature]:
        return list(range(1, count + 1))


class BandwidthAlgebra(RoutingAlgebra):
    """Widest-path component: prefer higher bottleneck bandwidth.

    ``⊕(l, s) = min(l, s)`` and wider is better.  This algebra is monotonic
    (extending a path can only narrow it) but **not strictly** monotonic
    (``min(l, s) = s`` whenever ``l >= s``), which is exactly why the paper
    composes it with a strictly monotonic tie-breaker.
    """

    name = "widest-path"

    #: Signature of the empty path: infinite capacity.
    INFINITY = 10 ** 9

    def __init__(self, bandwidths: Sequence[int] = (10, 100, 1000)):
        bad = [b for b in bandwidths if b <= 0]
        if bad:
            raise ValueError(f"bandwidths must be positive, got {bad}")
        self._bandwidths = list(dict.fromkeys(bandwidths))

    def preference(self, s1: Signature, s2: Signature) -> Pref:
        if s1 is PHI and s2 is PHI:
            return Pref.EQUAL
        if s1 is PHI:
            return Pref.WORSE
        if s2 is PHI:
            return Pref.BETTER
        if s1 > s2:  # wider is better
            return Pref.BETTER
        if s1 < s2:
            return Pref.WORSE
        return Pref.EQUAL

    def oplus(self, label: Label, sig: Signature) -> Signature:
        if sig is PHI:
            return PHI
        return min(label, sig)

    def labels(self) -> Sequence[Label]:
        return list(self._bandwidths)

    def origin_seed(self) -> Signature:
        return self.INFINITY

    @property
    def closed_form_monotonicity(self) -> ClosedFormCertificate:
        return ClosedFormCertificate(
            strictly_monotonic=False,
            monotonic=True,
            justification=(
                "min(l, s) can never exceed s, so extensions are never "
                "preferred; but min(l, s) = s when l >= s, so not strict"
            ),
        )

    def sample_signatures(self, count: int = 16) -> list[Signature]:
        return sorted(self._bandwidths, reverse=True)[:count]


def widest_shortest(bandwidths: Sequence[int] = (10, 100, 1000)) -> LexicalProduct:
    """Widest shortest-path policy: bandwidth first, hop count as tie-break."""
    return LexicalProduct(BandwidthAlgebra(bandwidths), ShortestHopCount(),
                          name="widest-shortest")


# --------------------------------------------------------------------------
# Gao-Rexford business-relationship guidelines
# --------------------------------------------------------------------------

#: Signature classes: route learned from a Customer / Peer (R) / Provider.
C, R, P = "C", "R", "P"
#: Link label classes: neighbor is my customer / peer / provider.
LC, LR, LP = "c", "r", "p"

_GR_REVERSE = {LC: LP, LP: LC, LR: LR}
#: ⊕P: a route relayed by neighbor v is classified by what v is to me.
_GR_CONCAT = {
    (LC, C): C, (LC, P): C, (LC, R): C,
    (LR, C): R, (LR, P): R, (LR, R): R,
    (LP, C): P, (LP, P): P, (LP, R): P,
}
#: ⊕E: export toward a provider ('p') or peer ('r') only customer routes.
#: (The paper's printed table is indexed by the reverse label; its row 'c'
#: is this row 'p' — the combined ⊕ tables coincide.)
_GR_EXPORT_FILTER = frozenset({
    (LP, P), (LP, R),
    (LR, P), (LR, R),
})
_GR_ORIGINATION = {LC: C, LR: R, LP: P}


def gao_rexford_a() -> TableAlgebra:
    """Gao-Rexford guideline A (paper Sec. II-B).

    Prefer customer routes over peer and provider routes; peer and provider
    routes are equally preferred (``P = R``); no import filtering; export to
    peers/providers only customer routes.

    The algebra is monotonic but **not strictly** monotonic (``c ⊕ C = C``),
    so on its own FSR reports it unsafe; composed with a strictly monotonic
    tie-breaker it is provably safe (Sec. IV-C).
    """
    tables = AlgebraTables(
        labels=[LC, LR, LP],
        signatures=[C, R, P],
        preference={C: 0, R: 1, P: 1},  # C ≺ R, C ≺ P, R = P
        concat=_GR_CONCAT,
        reverse=_GR_REVERSE,
        export_filter=_GR_EXPORT_FILTER,
        origination=_GR_ORIGINATION,
    )
    return TableAlgebra("gao-rexford-a", tables)


def gao_rexford_b() -> TableAlgebra:
    """Gao-Rexford guideline B.

    Guideline B relaxes A: peer routes may be preferred like customer routes,
    but both are strictly preferred over provider routes
    (``C = R ≺ P``).  Export filtering is unchanged.
    """
    tables = AlgebraTables(
        labels=[LC, LR, LP],
        signatures=[C, R, P],
        preference={C: 0, R: 0, P: 1},  # C = R, both ≺ P
        concat=_GR_CONCAT,
        reverse=_GR_REVERSE,
        export_filter=_GR_EXPORT_FILTER,
        origination=_GR_ORIGINATION,
    )
    return TableAlgebra("gao-rexford-b", tables)


def gao_rexford_with_hopcount(guideline: str = "a") -> LexicalProduct:
    """The composed policy deployed in the Fig. 4 experiment.

    Guideline A (monotonic) ⊗ shortest hop-count (strictly monotonic) is
    strictly monotonic by the composition rule, hence provably safe.
    """
    base = gao_rexford_a() if guideline == "a" else gao_rexford_b()
    return LexicalProduct(base, ShortestHopCount(),
                          name=f"{base.name}(x)hop-count")


def safe_backup(levels: int = 3) -> TableAlgebra:
    """Inherently safe backup routing (after Gao-Griffin-Rexford 2001).

    Signatures are avoidance levels ``0..levels-1`` (0 = primary route,
    higher = deeper backup).  A link labelled ``k`` bumps the route's level
    to at least ``k`` **plus one step of strictness**: traversing any link
    strictly increases the level, so the algebra is strictly monotonic and
    safe for any topology.  Routes beyond the maximum level are prohibited.
    """
    if levels < 2:
        raise ValueError("need at least 2 backup levels")
    labels = list(range(levels))
    signatures = list(range(levels))
    concat = {}
    for k in labels:
        for s in signatures:
            bumped = max(k, s + 1)
            if bumped < levels:
                concat[(k, s)] = bumped
    tables = AlgebraTables(
        labels=labels,
        signatures=signatures,
        preference={s: s for s in signatures},  # lower level preferred
        concat=concat,
        reverse={k: k for k in labels},
        origination={k: k for k in labels},
    )
    return TableAlgebra("safe-backup", tables)


def _int_preference(s1: Signature, s2: Signature) -> Pref:
    if s1 is PHI and s2 is PHI:
        return Pref.EQUAL
    if s1 is PHI:
        return Pref.WORSE
    if s2 is PHI:
        return Pref.BETTER
    if s1 < s2:
        return Pref.BETTER
    if s1 > s2:
        return Pref.WORSE
    return Pref.EQUAL
