"""Routing algebras: the single representation driving all of FSR.

* :mod:`repro.algebra.base` — ⟨Σ, ⪯, L, ⊕⟩ abstractions, φ, preference
  statements and ⊕ entries for the analyzer;
* :mod:`repro.algebra.extended` — separate ⊕I / ⊕P / ⊕E operators (the
  paper's Sec. III-A extension) and finite :class:`TableAlgebra`;
* :mod:`repro.algebra.product` — lexical product composition;
* :mod:`repro.algebra.library` — hop-count, shortest/widest path,
  Gao-Rexford A/B, safe backup routing;
* :mod:`repro.algebra.spp` — Stable Paths Problem instances and their
  algebra conversion;
* :mod:`repro.algebra.gadgets` — DISAGREE / BAD GADGET / GOOD GADGET /
  iBGP Figure-3 constructors and scaling workloads.
"""

from .aspath import AsPathAlgebra, gao_rexford_avoiding
from .base import (
    PHI,
    ClosedFormCertificate,
    Label,
    MonoEntry,
    Pref,
    PrefStatement,
    Rel,
    RoutingAlgebra,
    Signature,
    rank_sort,
)
from .extended import AlgebraTables, ExtendedAlgebra, TableAlgebra
from .hlp import HLP_WEIGHTS, HLPCostAlgebra, HLPTauAlgebra, hide_cost
from .gadgets import (
    GADGET_ZOO,
    bad_gadget,
    disagree,
    disagree_chain,
    good_gadget,
    ibgp_figure3,
    ibgp_figure3_fixed,
    replicate,
)
from .library import (
    BandwidthAlgebra,
    ShortestHopCount,
    ShortestPath,
    gao_rexford_a,
    gao_rexford_b,
    gao_rexford_with_hopcount,
    safe_backup,
    widest_shortest,
)
from .product import LexicalProduct
from .spp import Path, SPPAlgebra, SPPInstance, SPPValidationError

__all__ = [
    "AlgebraTables",
    "AsPathAlgebra",
    "GADGET_ZOO",
    "BandwidthAlgebra",
    "ClosedFormCertificate",
    "ExtendedAlgebra",
    "HLPCostAlgebra",
    "HLPTauAlgebra",
    "HLP_WEIGHTS",
    "hide_cost",
    "Label",
    "LexicalProduct",
    "MonoEntry",
    "PHI",
    "Path",
    "Pref",
    "PrefStatement",
    "Rel",
    "RoutingAlgebra",
    "SPPAlgebra",
    "SPPInstance",
    "SPPValidationError",
    "ShortestHopCount",
    "ShortestPath",
    "Signature",
    "TableAlgebra",
    "bad_gadget",
    "disagree",
    "disagree_chain",
    "gao_rexford_a",
    "gao_rexford_avoiding",
    "gao_rexford_b",
    "gao_rexford_with_hopcount",
    "good_gadget",
    "ibgp_figure3",
    "ibgp_figure3_fixed",
    "rank_sort",
    "replicate",
    "safe_backup",
    "widest_shortest",
]
