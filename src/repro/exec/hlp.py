"""HLP execution backend (paper Sec. VI-D as a third implementation).

Wraps :class:`~repro.protocols.hlp.HLPEngine` — hybrid link-state /
fragmented-path-vector routing over a domain-annotated topology — behind
the :class:`ExecutionBackend` contract, so campaigns can cross-check a
*mechanistically different* implementation against the native GPV engine
and the generated NDlog program.

What makes the three comparable is the algebra: HLP-family scenarios label
their links for :class:`~repro.algebra.hlp.HLPCostAlgebra` (summed weights
under domain-granularity loop prevention), which is precisely the metric
HLP's link-state + FPV machinery computes.  This session renders HLP's
routing state in that algebra's signature vocabulary — ``(cost, dpath)``
per ``(node, destination)`` — and the oracle's preference-equality
comparison does the rest: equal costs agree, regardless of which concrete
(router- or domain-level) path each implementation settled on.

The paths this backend reports are *domain-granular* (HLP's fragmented
path vector intentionally hides router-level detail), so cross-backend
route comparison virtually always falls through to signature equality —
which is the point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..algebra.hlp import HLPCostAlgebra
from ..protocols.hlp import HLPEngine
from .base import ExecutionBackend, ExecutionOutcome, ExecutionSession

if TYPE_CHECKING:
    from ..campaigns.scenarios import ResolvedEvent, Scenario


class HLPSession(ExecutionSession):
    """A prepared :class:`HLPEngine` run."""

    def __init__(self, scenario: "Scenario", *, seed: int,
                 log_routes: bool):
        if not isinstance(scenario.algebra, HLPCostAlgebra):
            raise ValueError(
                "the HLP backend executes HLP-cost scenarios only "
                f"(got algebra {scenario.algebra.name!r})")
        self.engine = HLPEngine(scenario.network, seed=seed)
        self.sim = self.engine.sim
        self.algebra = scenario.algebra
        self.destinations = list(scenario.destinations)
        #: HLP's fragmented adverts carry no router-level paths, so there
        #: is nothing SPP extraction could consume — the log stays empty
        #: (the oracle keeps a path-vector backend primary for families
        #: that extract).
        self.route_log: list = []

    def apply_event(self, event: "ResolvedEvent") -> None:
        if not self.network.has_link(event.a, event.b):
            return  # already failed (or never materialized)
        if event.kind == "fail":
            self.engine.fail_link(event.a, event.b)
        elif event.kind == "perturb":
            # HLP-family perturbations re-weight intra-domain links; the
            # resolved label is the algebra triple (weight, domain, domain).
            self.engine.perturb_link(event.a, event.b, event.label[0])

    def run(self, until: float | None = None,
            max_events: int | None = None) -> ExecutionOutcome:
        reason = self.engine.run(until=until, max_events=max_events)
        return self._outcome(HLPBackend.name, reason)

    def route_table(self) -> tuple[dict, dict]:
        routes: dict = {}
        sigs: dict = {}
        for node in self.network.nodes():
            for dest in self.destinations:
                if node == dest:
                    continue
                routes[(node, dest)], sigs[(node, dest)] = \
                    self._render_route(node, dest)
        return routes, sigs

    def _render_route(self, node: str, dest: str) -> tuple:
        """``(path, sig)`` of HLP's current route in algebra vocabulary."""
        engine = self.engine
        cost = engine.route_cost(node, dest)
        if cost is None:
            return None, None
        state = engine._states[node]
        if engine._domain(dest) == state.domain:
            return (node, dest), (cost, (state.domain,))
        _border_cost, dpath, border = state.best_ext[dest]
        path = (node, dest) if border == node else (node, border, dest)
        return path, (cost, tuple(dpath))


class HLPBackend(ExecutionBackend):
    """The hierarchical protocol (`hlp`): link-state + FPV over domains."""

    name = "hlp"

    def supports(self, scenario: "Scenario") -> bool:
        """Only HLP-cost scenarios are executable *and* comparable.

        The algebra check implies the topology one: HLP-family
        materialization only labels domain-annotated networks for
        :class:`HLPCostAlgebra`, and the signatures it renders are only
        meaningful against backends running the same algebra.
        """
        return (isinstance(scenario.algebra, HLPCostAlgebra)
                and getattr(scenario, "top_k", 1) == 1)

    def prepare(self, scenario: "Scenario", *, seed: int = 0,
                log_routes: bool = False) -> HLPSession:
        return HLPSession(scenario, seed=seed, log_routes=log_routes)
