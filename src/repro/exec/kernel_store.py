"""Cross-process persistence for tabulated batch kernels (schema v2).

The process caches in :mod:`repro.exec.batch` pay for each distinct
(algebra, transfer vocabulary) closure once per worker *lifetime*; this
module makes tabulated kernels survive across processes and campaign
invocations, so fleet workers and repeat campaigns skip re-tabulation
entirely — and it is the documented **drop-in seam** for accelerated
kernel producers: anything (GPU tabulators, mypyc/Rust builders, a CI
warm-up job) that can write the serialized rank tables for a canonical
key serves every future batch run from here.

Kernels are content-addressed by the ``repr`` of the batch backend's
process-cache key — the isomorphism-invariant
:func:`~repro.campaigns.canonical.canonical_key` of the algebra plus the
scenario's transfer vocabulary — so relabeled copies of one algebra
share a row, exactly mirroring the verdict store.  Negative results
("this algebra is not batchable over this vocabulary") are stored too,
as NULL payloads: a declined closure is as expensive to re-derive as an
accepted one.

Storage, concurrency and hygiene deliberately mirror
:mod:`repro.campaigns.verdict_store`: one sqlite database, WAL + busy
timeout for multi-writer fleets, ``INSERT OR IGNORE`` so racing workers
tabulating the same kernel are harmless, ``PRAGMA user_version``-gated
schema migration, and automatic open-time retention (hit decay, age and
size bounds, coldest-first eviction).
"""

from __future__ import annotations

import sqlite3
import time
from dataclasses import dataclass

from ..obs import metrics as _obs_metrics

SCHEMA_VERSION = 2

#: Store I/O counters (the durable per-row ``hits`` column still drives
#: eviction; these registry series are the live telemetry view).
_STORE_OPS = {
    op: _obs_metrics.counter("repro_store_ops_total", store="kernel",
                             op=op)
    for op in ("get_hit", "get_miss", "put")
}

_SCHEMA = """
CREATE TABLE IF NOT EXISTS kernels (
    key        TEXT PRIMARY KEY,
    payload    BLOB,
    created_at REAL NOT NULL,
    hits       INTEGER NOT NULL DEFAULT 0,
    depth      INTEGER NOT NULL DEFAULT 0
)
"""

_META_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    name  TEXT PRIMARY KEY,
    value REAL NOT NULL
)
"""


@dataclass(frozen=True)
class KernelRetention:
    """Automatic hygiene bounds applied every time a store is opened.

    Kernels are far fewer and far larger than verdicts (a campaign
    rotation draws tens of distinct algebras, each kernel carrying its
    ``int32`` rank tables), so the defaults bound *rows* much lower than
    the verdict store while keeping the same decay/eviction shape.
    """

    max_rows: int = 4_096
    max_age_days: float = 90.0
    decay_half_life_days: float = 14.0

    @property
    def max_age_s(self) -> float:
        return self.max_age_days * 86_400.0

    @property
    def half_life_s(self) -> float:
        return self.decay_half_life_days * 86_400.0

    @property
    def mutates_on_open(self) -> bool:
        return (self.max_rows > 0 or self.max_age_s > 0
                or self.half_life_s > 0)


#: Opt-out policy for callers that must not rewrite rows on open.
NO_RETENTION = KernelRetention(max_rows=0, max_age_days=0.0,
                               decay_half_life_days=0.0)


class KernelStore:
    """An append-mostly ``canonical kernel key → payload`` sqlite store.

    Payloads are opaque to the store — :mod:`repro.exec.batch` owns the
    serialization (pickled rank tables today; an accelerated producer
    can write the same format).  A NULL payload is a cached *negative*
    result: the algebra/vocabulary pair is known unbatchable.
    """

    def __init__(self, path: str,
                 retention: KernelRetention | None = None,
                 now: float | None = None):
        self.path = path
        self.retention = retention or KernelRetention()
        #: What the automatic open-time hygiene did (for stats/tests).
        self.last_retention: dict[str, int] = {}
        self._conn = sqlite3.connect(path, timeout=30.0)
        try:  # WAL lets fleet workers read while one writes.
            self._conn.execute("PRAGMA journal_mode=WAL")
        except sqlite3.OperationalError:
            pass  # e.g. unsupported filesystem; rollback journal still works
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.execute(_SCHEMA)
        self._conn.execute(_META_SCHEMA)
        self._conn.commit()
        # Migration always runs — a v1 store opened with NO_RETENTION
        # still needs the depth column before any write can succeed —
        # while retention stays opt-out.  Serialize racing openers
        # (parallel fleet workers all open the store): take the write
        # lock up front, then re-check versions/timestamps under it.
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._migrate()
            if self.retention.mutates_on_open:
                self._apply_retention(
                    now if now is not None else time.time())
        except BaseException:
            self._conn.rollback()
            raise
        self._conn.commit()

    # -- schema migration -----------------------------------------------------

    def _migrate(self) -> None:
        """Format changes re-key or drop rows here, gated on ``PRAGMA
        user_version`` exactly like the verdict store's v2→v3 pass.
        Unknown *newer* versions drop the table rather than misread
        payloads (kernels are pure cache — losing them costs one
        re-tabulation each).

        v1→v2: add the ``depth`` column (bounded-hole deepening
        write-through) and drop cached *negative* rows.  v1 negatives
        encode "unbatchable under the v1 tie-respect gate", which the
        v2 hazard-guarded admission deliberately widens — keeping them
        would permanently pin newly admissible algebras to the scalar
        engines.  Positive rows are preserved verbatim: v1 payloads
        decode with conservative v2 defaults (a v1-stored monotone
        kernel is exactly a hazard-free one), so a warm fleet store
        re-tabulates nothing it already knows.
        """
        version = self._conn.execute("PRAGMA user_version").fetchone()[0]
        if version > SCHEMA_VERSION:
            dropped = self._conn.execute(
                "DELETE FROM kernels").rowcount
            if dropped:
                self.last_retention["format_dropped"] = dropped
        elif version == SCHEMA_VERSION:
            return
        elif version == 1:
            columns = {row[1] for row in self._conn.execute(
                "PRAGMA table_info(kernels)")}
            if "depth" not in columns:
                self._conn.execute(
                    "ALTER TABLE kernels ADD COLUMN "
                    "depth INTEGER NOT NULL DEFAULT 0")
            negatives = self._conn.execute(
                "DELETE FROM kernels WHERE payload IS NULL").rowcount
            if negatives:
                self.last_retention["negative_dropped"] = negatives
        # version 0 is a fresh database: _SCHEMA already carries the
        # current shape, only the stamp is missing.
        self._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")

    # -- automatic retention --------------------------------------------------

    def _apply_retention(self, now: float) -> None:
        policy = self.retention
        stats = self.last_retention
        if policy.half_life_s > 0:
            last = self._meta("last_decay_at")
            if last is None:
                self._set_meta("last_decay_at", now)
            else:
                halvings = int((now - last) / policy.half_life_s)
                if halvings > 0:
                    self._conn.execute(
                        "UPDATE kernels SET hits = hits / ? WHERE hits > 0",
                        (2 ** min(halvings, 62),))
                    self._set_meta(
                        "last_decay_at",
                        last + halvings * policy.half_life_s)
                    stats["decay_halvings"] = halvings
        if policy.max_age_s > 0:
            evicted = self._conn.execute(
                "DELETE FROM kernels WHERE hits = 0 AND created_at < ?",
                (now - policy.max_age_s,)).rowcount
            if evicted:
                stats["age_evicted"] = evicted
        if policy.max_rows > 0:
            total = self._conn.execute(
                "SELECT COUNT(*) FROM kernels").fetchone()[0]
            excess = total - policy.max_rows
            if excess > 0:
                self._conn.execute(
                    "DELETE FROM kernels WHERE key IN ("
                    "SELECT key FROM kernels "
                    "ORDER BY hits ASC, created_at ASC LIMIT ?)",
                    (excess,))
                stats["size_evicted"] = excess

    def _meta(self, name: str) -> float | None:
        row = self._conn.execute(
            "SELECT value FROM store_meta WHERE name = ?", (name,)).fetchone()
        return None if row is None else row[0]

    def _set_meta(self, name: str, value: float) -> None:
        self._conn.execute(
            "INSERT INTO store_meta (name, value) VALUES (?, ?) "
            "ON CONFLICT(name) DO UPDATE SET value = excluded.value",
            (name, value))

    # -- reads ----------------------------------------------------------------

    def get(self, key: str) -> tuple[bool, bytes | None]:
        """``(found, payload)`` — payload None on a found row means a
        cached negative result ("unbatchable"), distinct from a miss.
        Hits are counted inline (one bounded-retry write; kernel lookups
        are orders of magnitude rarer than verdict lookups)."""
        row = self._conn.execute(
            "SELECT payload FROM kernels WHERE key = ?", (key,)).fetchone()
        if row is None:
            _STORE_OPS["get_miss"].inc()
            return False, None
        _STORE_OPS["get_hit"].inc()
        try:
            self._retry_locked(
                lambda: self._conn.execute(
                    "UPDATE kernels SET hits = hits + 1 WHERE key = ?",
                    (key,)))
        except sqlite3.OperationalError:
            pass  # bookkeeping only; the payload is already in hand
        return True, row[0]

    def __len__(self) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM kernels").fetchone()[0]

    # -- writes ---------------------------------------------------------------

    def put(self, key: str, payload: bytes | None,
            depth: int = 0) -> None:
        """Record one tabulated kernel (or negative result); racing
        duplicates are ignored, not errors — both workers tabulated the
        same tables from the same canonical key."""
        _STORE_OPS["put"].inc()
        self._retry_locked(
            lambda: self._conn.execute(
                "INSERT OR IGNORE INTO kernels "
                "(key, payload, created_at, depth) VALUES (?, ?, ?, ?)",
                (key, payload, time.time(), depth)))

    def put_deeper(self, key: str, payload: bytes | None,
                   depth: int) -> None:
        """Upsert a *deepened* kernel: replaces the stored payload only
        when ``depth`` strictly exceeds the row's — racing workers that
        deepened to different horizons converge on the deepest tables,
        and a late shallow writer can never clobber a deeper one."""
        _STORE_OPS["put"].inc()
        self._retry_locked(
            lambda: self._conn.execute(
                "INSERT INTO kernels (key, payload, created_at, depth) "
                "VALUES (?, ?, ?, ?) "
                "ON CONFLICT(key) DO UPDATE SET "
                "payload = excluded.payload, depth = excluded.depth "
                "WHERE excluded.depth > kernels.depth",
                (key, payload, time.time(), depth)))

    def _retry_locked(self, write, attempts: int = 5) -> None:
        """Run one write+commit, retrying transient lock errors (same
        contract and rationale as the verdict store's)."""
        for attempt in range(attempts):
            try:
                write()
                self._conn.commit()
                return
            except sqlite3.OperationalError as error:
                try:
                    self._conn.rollback()
                except sqlite3.OperationalError:
                    pass
                message = str(error).lower()
                if "locked" not in message and "busy" not in message:
                    raise
                if attempt == attempts - 1:
                    raise
                time.sleep(0.05 * (attempt + 1))

    # -- hygiene ---------------------------------------------------------------

    def stats(self) -> dict:
        total, negative, hits, size = self._conn.execute(
            "SELECT COUNT(*), "
            "COALESCE(SUM(CASE WHEN payload IS NULL THEN 1 ELSE 0 END), 0), "
            "COALESCE(SUM(hits), 0), "
            "COALESCE(SUM(LENGTH(COALESCE(payload, ''))), 0) "
            "FROM kernels").fetchone()
        version = self._conn.execute("PRAGMA user_version").fetchone()[0]
        return {
            "kernels": total,
            "negative": negative,
            "hits": hits,
            "payload_bytes": size,
            "schema_version": version,
            "retention": dict(self.last_retention),
        }

    def compact(self) -> int:
        """Evict never-hit rows and reclaim the space; returns the count."""
        evicted = self._conn.execute(
            "DELETE FROM kernels WHERE hits = 0").rowcount
        self._conn.commit()
        self._conn.execute("VACUUM")
        return evicted

    def close(self) -> None:
        self._conn.close()
