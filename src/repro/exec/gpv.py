"""Native GPV engine as an execution backend.

Wraps :class:`~repro.protocols.gpv.GPVEngine` — the fast Python
path-vector implementation — behind the :class:`ExecutionBackend`
contract.  This is the campaign's reference implementation: large
topologies simulate quickly, and its ``route_log`` feeds the iBGP
extraction workflow.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..protocols.gpv import GPVEngine
from .base import ExecutionBackend, ExecutionOutcome, ExecutionSession

if TYPE_CHECKING:
    from ..campaigns.scenarios import ResolvedEvent, Scenario


class GPVSession(ExecutionSession):
    """A prepared :class:`GPVEngine` run."""

    def __init__(self, scenario: "Scenario", *, seed: int,
                 log_routes: bool):
        self.top_k = getattr(scenario, "top_k", 1)
        self.engine = GPVEngine(
            scenario.network, scenario.algebra, scenario.destinations,
            seed=seed, log_routes=log_routes, top_k=self.top_k,
            batch_interval=getattr(scenario, "batch_interval", None))
        self.sim = self.engine.sim
        self.algebra = scenario.algebra
        self.destinations = list(scenario.destinations)

    @property
    def route_log(self) -> list:
        return self.engine.route_log

    def apply_event(self, event: "ResolvedEvent") -> None:
        if event.kind == "hijack":
            # The attacker-destination pair is never a link — the forged
            # origination is injected before any link-existence guard.
            self.engine.inject_route(event.a, event.b, event.label)
            return
        if not self.network.has_link(event.a, event.b):
            return  # already failed (or never materialized)
        if event.kind == "fail":
            self.engine.fail_link(event.a, event.b)
        elif event.kind == "perturb":
            self.engine.perturb_link(event.a, event.b,
                                     label_ab=event.label,
                                     label_ba=event.label)

    def run(self, until: float | None = None,
            max_events: int | None = None) -> ExecutionOutcome:
        reason = self.engine.run(until=until, max_events=max_events)
        return self._outcome(GPVBackend.name, reason)

    def route_table(self) -> tuple[dict, dict]:
        routes: dict = {}
        sigs: dict = {}
        for node in self.network.nodes():
            for dest in self.destinations:
                if node == dest:
                    continue
                route = self.engine.best_route(node, dest)
                routes[(node, dest)] = route[1] if route else None
                sigs[(node, dest)] = route[0] if route else None
        return routes, sigs

    def route_sets(self) -> dict:
        if self.top_k < 2:
            return {}
        sets: dict = {}
        for node in self.network.nodes():
            for dest in self.destinations:
                if node == dest:
                    continue
                ranked = self.engine.known_routes(node, dest)[:self.top_k]
                if ranked:
                    sets[(node, dest)] = tuple(ranked)
        return sets


class GPVBackend(ExecutionBackend):
    """The native engine (`gpv`): fast, extraction-capable."""

    name = "gpv"

    def prepare(self, scenario: "Scenario", *, seed: int = 0,
                log_routes: bool = False) -> GPVSession:
        return GPVSession(scenario, seed=seed, log_routes=log_routes)
