"""Pluggable execution backends for differential campaigns.

Every way of *running* a routing scenario lives behind one contract
(:class:`ExecutionBackend` → :class:`ExecutionSession` →
:class:`ExecutionOutcome`), so the campaign oracle can execute a scenario
on N independent implementations and cross-check their route tables:

* ``gpv`` (:class:`GPVBackend`) — the native Python path-vector engine;
* ``ndlog`` (:class:`NDlogBackend`) — the algebra compiled to NDlog and
  interpreted by the runtime (the paper's generated-implementation path);
* ``hlp`` (:class:`HLPBackend`) — the hierarchical link-state / FPV
  protocol of the paper's Sec. VI-D case study, comparable on HLP-cost
  scenarios (it declares per-scenario applicability via
  :meth:`ExecutionBackend.supports`);
* ``batch`` (:class:`BatchBackend`) — the vectorized fixpoint engine:
  strictly monotonic algebras tabulated to integer preference ranks and
  relaxed over numpy, thousands of scenarios per call via
  :meth:`ExecutionBackend.prepare_batch`; the scalar engines stay the
  differential ground truth.

See ``src/repro/exec/README.md`` for the backend contract and the
checklist for adding further backends.
"""

from .base import (
    BatchExecutionSession,
    ExecutionBackend,
    ExecutionOutcome,
    ExecutionSession,
    route_mismatches,
    route_set_mismatches,
    schedule_events,
)
from .batch import BatchBackend, BatchSession
from .gpv import GPVBackend, GPVSession
from .hlp import HLPBackend, HLPSession
from .ndlog import NDlogBackend, NDlogSession

#: Registry of backend name → singleton instance (backends are stateless).
BACKENDS: dict[str, ExecutionBackend] = {
    GPVBackend.name: GPVBackend(),
    NDlogBackend.name: NDlogBackend(),
    HLPBackend.name: HLPBackend(),
    BatchBackend.name: BatchBackend(),
}

#: The default single-backend configuration (fast path).
DEFAULT_BACKENDS = (GPVBackend.name,)


def get_backend(name: str) -> ExecutionBackend:
    """Look up a backend by registry name (``KeyError`` with choices)."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise KeyError(f"unknown execution backend {name!r}; "
                       f"choose from {sorted(BACKENDS)}") from None


def resolve_backends(names) -> tuple[str, ...]:
    """Normalize/validate a backend list (``ValueError`` on bad input)."""
    resolved = tuple(names)
    if not resolved:
        raise ValueError("at least one execution backend is required")
    unknown = [n for n in resolved if n not in BACKENDS]
    if unknown:
        raise ValueError(f"unknown execution backends {unknown}; "
                         f"choose from {sorted(BACKENDS)}")
    if len(set(resolved)) != len(resolved):
        raise ValueError(f"duplicate execution backends in {list(resolved)}")
    return resolved


__all__ = [
    "BACKENDS",
    "DEFAULT_BACKENDS",
    "BatchBackend",
    "BatchExecutionSession",
    "BatchSession",
    "ExecutionBackend",
    "ExecutionOutcome",
    "ExecutionSession",
    "GPVBackend",
    "GPVSession",
    "HLPBackend",
    "HLPSession",
    "NDlogBackend",
    "NDlogSession",
    "get_backend",
    "resolve_backends",
    "route_mismatches",
    "route_set_mismatches",
    "schedule_events",
]
