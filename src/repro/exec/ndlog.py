"""Generated-NDlog execution backend.

Compiles the scenario's algebra through :mod:`repro.ndlog.codegen` (the
paper's Sec. V-B translation) and runs the generated GPV program on the
NDlog runtime over the *same* seeded simulator and event schedule as every
other backend — the campaign-scale version of the paper's claim that the
analysis half and the generated implementation agree.

Topology events need GPV-protocol-aware handling on top of the generic
runtime primitives (the runtime knows tables, not BGP sessions):

* **link failure** — delete the ``label`` facts across the dead session,
  drop per-neighbor transport state, then *withdraw* every ``sig`` row
  learned from (or originated over) the vanished neighbor by upserting a
  φ row at the same ``(U, V, D)`` key.  The φ delta flows through the
  normal aggregate/send machinery, so downstream nodes see ordinary φ
  (withdraw) advertisements — exactly the native engine's failure path;
* **metric/policy perturbation** — update the ``label`` facts and replay
  the raw advertisements received over the link (the runtime keeps them
  pre-⊕, mirroring the native engine's ``adj_in``), re-deriving the
  combined signatures under the new label; locally originated one-hop
  routes over the link are re-injected with their new origin signature.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..algebra.base import PHI, rank_routes
from ..ndlog.codegen import deploy_gpv
from ..net.simulator import Simulator
from .base import ExecutionBackend, ExecutionOutcome, ExecutionSession

if TYPE_CHECKING:
    from ..campaigns.scenarios import ResolvedEvent, Scenario

#: Column positions of the generated GPV program's relations (the top-k
#: variant appends a rank column to ``sig`` at SIG_RANK).
SIG_NEIGHBOR, SIG_DEST, SIG_SIG, SIG_PATH, SIG_RANK = 1, 2, 3, 4, 5
OPT_DEST, OPT_SIG, OPT_PATH = 1, 2, 3


class NDlogSession(ExecutionSession):
    """A deployed GPV program prepared for one scenario."""

    def __init__(self, scenario: "Scenario", *, seed: int,
                 log_routes: bool):
        self.algebra = scenario.algebra
        self.destinations = list(scenario.destinations)
        self.top_k = getattr(scenario, "top_k", 1)
        self.sim = Simulator(scenario.network, seed=seed)
        self.runtime = deploy_gpv(
            scenario.network, scenario.algebra, self.destinations,
            simulator=self.sim, top_k=self.top_k,
            batch_interval=getattr(scenario, "batch_interval", None))
        self.route_log: list = []
        if log_routes:
            self.runtime.observers.append(self._log_route)

    def _log_route(self, node: str, relation: str, row: tuple) -> None:
        """Mirror the native engine's RIB-in route log off ``sig`` deltas.

        Self-originated rows (neighbor column == node) are skipped: the
        native engine logs *received* advertisements only, and extraction
        (paper Sec. VI-B) is defined over those.
        """
        if (relation == "sig" and row[SIG_SIG] is not PHI
                and row[SIG_NEIGHBOR] != node):
            self.route_log.append(
                (node, row[SIG_DEST], row[SIG_SIG], row[SIG_PATH]))

    # -- events ---------------------------------------------------------------

    def apply_event(self, event: "ResolvedEvent") -> None:
        if event.kind == "hijack":
            # Attacker-destination is never a link — inject the forged
            # origination before any link-existence guard.
            self.inject_route(event.a, event.b, event.label)
            return
        if not self.network.has_link(event.a, event.b):
            return  # already failed (or never materialized)
        if event.kind == "fail":
            self.fail_link(event.a, event.b)
        elif event.kind == "perturb":
            self.perturb_link(event.a, event.b,
                              label_ab=event.label, label_ba=event.label)

    def inject_route(self, node: str, dest: str, label) -> None:
        """Forged origination (hijack): a ``sig`` fact with no link behind it.

        Mirrors the origination replay of :meth:`perturb_link` — the delta
        flows through the generated aggregate/send rules like any other
        locally originated route.
        """
        try:
            sig = self.algebra.origin_signature(label)
        except (KeyError, NotImplementedError):
            return
        if sig is PHI:
            return
        forged = (node, node, dest, sig, (node, dest))
        if self.top_k > 1:
            forged += (0,)
        self.runtime.apply_delta(node, "sig", forged)

    def fail_link(self, a: str, b: str) -> None:
        """BGP session failure: withdraw everything learned over (a, b)."""
        runtime = self.runtime
        self.network.remove_link(a, b)
        for node, gone in ((a, b), (b, a)):
            runtime.delete_facts(node, "label",
                                 lambda row: row[1] == gone)
            runtime.drop_neighbor_state(node, gone)
            if self.top_k > 1:
                # Rank slots already advertised toward the vanished
                # neighbor are void (the label join keeps them from ever
                # being re-derived or sent).
                runtime.delete_facts(node, "advBest",
                                     lambda row: row[1] == gone)
            for row in runtime.table_rows(node, "sig"):
                if row[SIG_SIG] is PHI:
                    continue
                learned_from_gone = row[SIG_NEIGHBOR] == gone
                originated_over = (row[SIG_NEIGHBOR] == node
                                   and row[SIG_DEST] == gone)
                if learned_from_gone or originated_over:
                    withdrawal = (node, row[SIG_NEIGHBOR], row[SIG_DEST],
                                  PHI, (node,))
                    if self.top_k > 1:
                        withdrawal += (row[SIG_RANK],)
                    runtime.apply_delta(node, "sig", withdrawal)

    def perturb_link(self, a: str, b: str, *, label_ab=None,
                     label_ba=None) -> None:
        """Re-label the link and re-derive everything received over it."""
        if label_ab is not None:
            self.network.set_label(a, b, label_ab)
        if label_ba is not None:
            self.network.set_label(b, a, label_ba)
        runtime = self.runtime
        for node, src in ((a, b), (b, a)):
            label = self.network.label(node, src)
            if label is None:
                continue
            runtime.install_fact(node, "label", (node, src, label))
            for row in runtime.raw_advertisements(node, src):
                runtime.apply_delta(node, runtime.transport.msg_relation, row)
            if src in self.destinations:
                try:
                    sig = self.algebra.origin_signature(label)
                except (KeyError, NotImplementedError):
                    sig = PHI
                if sig is not PHI:
                    origination = (node, node, src, sig, (node, src))
                    if self.top_k > 1:
                        origination += (0,)
                    runtime.apply_delta(node, "sig", origination)

    # -- run / snapshot -------------------------------------------------------

    def run(self, until: float | None = None,
            max_events: int | None = None) -> ExecutionOutcome:
        reason = self.sim.run(until=until, max_events=max_events)
        return self._outcome(NDlogBackend.name, reason)

    def route_table(self) -> tuple[dict, dict]:
        routes: dict = {}
        sigs: dict = {}
        dests = set(self.destinations)
        for node in self.network.nodes():
            held = {row[OPT_DEST]: row
                    for row in self.runtime.table_rows(node, "localOpt")
                    if row[OPT_SIG] is not PHI}
            for dest in dests:
                if node == dest:
                    continue
                row = held.get(dest)
                routes[(node, dest)] = row[OPT_PATH] if row else None
                sigs[(node, dest)] = row[OPT_SIG] if row else None
        return routes, sigs

    def route_sets(self) -> dict:
        """Ranked candidate pool per pair, capped at k (multipath only).

        Mirrors the native engine's ``known_routes``: all non-φ ``sig``
        rows for the pair, in the shared :func:`rank_routes` order.
        """
        if self.top_k < 2:
            return {}
        sets: dict = {}
        dests = set(self.destinations)
        for node in self.network.nodes():
            pools: dict = {}
            for row in self.runtime.table_rows(node, "sig"):
                if row[SIG_DEST] not in dests:
                    continue
                pools.setdefault(row[SIG_DEST], []).append(
                    (row[SIG_SIG], row[SIG_PATH]))
            for dest, pool in pools.items():
                if node == dest:
                    continue
                ranked = rank_routes(self.algebra.better, pool)
                sets[(node, dest)] = tuple(ranked[:self.top_k])
        return sets


class NDlogBackend(ExecutionBackend):
    """The generated-code path (`ndlog`): algebra → NDlog → runtime."""

    name = "ndlog"

    def prepare(self, scenario: "Scenario", *, seed: int = 0,
                log_routes: bool = False) -> NDlogSession:
        return NDlogSession(scenario, seed=seed, log_routes=log_routes)
