"""Vectorized batch execution backend: thousands of scenarios per call.

The scalar engines (GPV, NDlog) simulate every advertisement of every
scenario through a discrete-event loop — faithful, and the differential
ground truth, but the campaign hot path.  This backend exploits the
theorem the whole toolkit is built on: for a **strictly monotonic**
algebra the protocol's converged best-route table *is* the unique
Bellman-Ford fixpoint of the final topology (paper Thm. 4.1 plus
uniqueness of the stable state), independent of message timing, event
interleaving, or advertisement batching.  So instead of simulating, it:

1. **tabulates the algebra ordinally** — the reachable signature closure
   (origin signatures extended by every observed label) is rank-sorted
   into integer ids where *smaller id == more preferred*, with φ as the
   largest, absorbing id; ⊕ becomes one ``int32`` lookup table
   ``trans[label, sig] -> sig`` (the canonicalizer's ordinal-rank
   rendering, promoted to an execution kernel).  Strict monotonicity is
   *verified* during closure — every tabulated extension must be
   strictly worse than its source, which also guarantees ids strictly
   increase across ⊕ — and any violation marks the algebra unsupported;
2. **applies each scenario's event mask up front** — link failures
   remove links, perturbations relabel them; history-independence of
   the unique stable state makes the final topology sufficient;
3. **relaxes all scenarios at once** in struct-of-arrays form: one flat
   ``int32`` state vector over every (scenario, destination, node)
   triple, one flat directed-edge list, and synchronous
   ``np.minimum.at`` rounds until fixpoint (ids only ever decrease, and
   strictly-increasing ⊕ bounds the rounds by the signature count).

Scenarios whose semantics the fixpoint shortcut cannot reproduce are
declared unsupported (see :meth:`BatchBackend.supports`) and stay on the
scalar engines; the scalar↔batched differential in the campaign oracle
and the fixed-seed equality gate in ``benchmarks/`` keep the fast path
honest.

numpy is optional: without it the backend simply supports nothing, so
campaigns degrade to the scalar engines instead of failing to import.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Iterable

try:  # gated: the toolkit must import (and run scalar) without numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less boxes
    _np = None

from ..algebra.base import PHI, Pref, RoutingAlgebra, rank_sort
from ..algebra.extended import ExtendedAlgebra
from ..algebra.hlp import HLPCostAlgebra
from ..algebra.spp import SPPAlgebra
from ..net.simulator import StopReason
from .base import (
    BatchExecutionSession,
    ExecutionBackend,
    ExecutionOutcome,
    ExecutionSession,
)

if TYPE_CHECKING:
    from ..campaigns.scenarios import ResolvedEvent, Scenario

#: Structural limits of the kernel: the ordinal table must stay small
#: enough that tabulation is cheaper than the simulations it replaces.
MAX_NODES = 64
MAX_SIGNATURES = 4096
MAX_CLOSURE_DEPTH = 64

#: algebra canonical key + observed label set -> kernel (None = unsupported).
_KERNEL_CACHE: dict[tuple, "_Kernel | None"] = {}
_KERNEL_CACHE_MAX = 256


def _transfer(algebra: RoutingAlgebra, key: Hashable, sig):
    """One directed link traversal, exactly as the scalar engines do it.

    For :class:`ExtendedAlgebra` the key is the directed
    ``(export label, import label)`` pair — the sender filters with ⊕E
    over *its* side's label and the receiver filters (⊕I) and extends
    (⊕P) over the reverse direction's label, mirroring the GPV/NDlog
    send/receive split.  Plain algebras have a single combined ⊕ and the
    key is the receiver-side label alone.
    """
    if sig is PHI:
        return PHI
    if isinstance(algebra, ExtendedAlgebra):
        out_label, in_label = key
        if not algebra.export_allows(out_label, sig):
            return PHI
        if not algebra.import_allows(in_label, sig):
            return PHI
        return algebra.concat(in_label, sig)
    return algebra.oplus(key, sig)


def _origin_sig(algebra: RoutingAlgebra, label: Hashable):
    """One-hop origination, with the engines' undefined-label semantics
    (a label the algebra cannot originate over simply yields no route)."""
    try:
        return algebra.origin_signature(label)
    except (KeyError, NotImplementedError):
        return PHI


class _Kernel:
    """One algebra tabulated over one transfer vocabulary, as integer ranks.

    ``sigs[i]`` is the representative signature of ordinal id ``i`` (rank
    order, ties broken by ``repr`` so ids are deterministic); ``phi_id ==
    len(sigs)`` is φ.  ``trans[key_id, sig_id]`` is the id of the
    signature after one directed link traversal (φ row/φ results map to
    ``phi_id``), and ``origin_id[label]`` the id of the one-hop
    origination signature over an import label.  Strict monotonicity
    makes every non-φ ``trans`` entry strictly larger than its source id
    — the property both the fixpoint argument and the next-hop
    reconstruction lean on.
    """

    __slots__ = ("sigs", "sig_id", "phi_id", "key_id", "trans",
                 "origin_id")

    def __init__(self, sigs: list, key_id: dict, trans, origin_id: dict):
        self.sigs = sigs
        self.sig_id = {sig: i for i, sig in enumerate(sigs)}
        self.phi_id = len(sigs)
        self.key_id = key_id
        self.trans = trans
        self.origin_id = origin_id


def _build_kernel(algebra: RoutingAlgebra, keys: Iterable[Hashable],
                  origin_labels: Iterable[Hashable]) -> "_Kernel | None":
    """Tabulate ``algebra`` over a transfer vocabulary; None if unbatchable.

    Unsupported means: the reachable closure does not stay within the
    size budget, or — the crucial one — some tabulated extension is not
    *strictly* worse than its source signature (without strict
    monotonicity the fixpoint need not equal the protocol's outcome, or
    even be unique).

    The closure is *depth*-truncated, not required to be closed:
    additive metrics (shortest-path, hop counts) have infinite signature
    spaces, but walks longer than ``MAX_CLOSURE_DEPTH + 1`` hops can
    never win on a ``MAX_NODES``-bounded topology (every simple path is
    shorter, and strict monotonicity makes loopy walks strictly worse),
    so extensions past the depth horizon are tabulated as φ.
    """
    ordered_keys = sorted(set(keys), key=repr)
    try:
        origin = {label: _origin_sig(algebra, label)
                  for label in sorted(set(origin_labels), key=repr)}
        seen = {sig for sig in origin.values() if sig is not PHI}
        frontier = list(seen)
        depth = 0
        while frontier:
            depth += 1
            if depth > MAX_CLOSURE_DEPTH:
                break  # deeper values are loopy-walk-only: tabulate as φ
            fresh = []
            for sig in frontier:
                for key in ordered_keys:
                    extended = _transfer(algebra, key, sig)
                    if extended is PHI:
                        continue
                    if algebra.preference(sig, extended) is not Pref.BETTER:
                        return None  # not strictly monotonic
                    if extended not in seen:
                        seen.add(extended)
                        fresh.append(extended)
                        if len(seen) > MAX_SIGNATURES:
                            return None
            frontier = fresh
        sigs = rank_sort(algebra, sorted(seen, key=repr))
        sig_id = {sig: i for i, sig in enumerate(sigs)}
        phi_id = len(sigs)
        key_id = {key: i for i, key in enumerate(ordered_keys)}
        trans = _np.full((max(len(ordered_keys), 1), phi_id + 1), phi_id,
                         dtype=_np.int32)
        for key, ki in key_id.items():
            for sig, si in sig_id.items():
                extended = _transfer(algebra, key, sig)
                if extended is PHI:
                    continue
                ti = sig_id.get(extended)
                if ti is None:
                    continue  # beyond the depth horizon: stays φ
                if ti <= si:  # a rank tie would break the id ordering
                    return None
                trans[ki, si] = ti
        # Isotonicity (per-row monotone ids, φ greatest): the protocol
        # propagates only each node's *selected* best, so min-relaxation
        # equals the protocol's stable state only when extending a better
        # route never yields a worse one.  Strict inflation alone does not
        # give this (BGP-like algebras are famously non-isotone); rows
        # that ever decrease mark the algebra unbatchable.
        if not bool(_np.all(trans[:, :-1] <= trans[:, 1:])):
            return None
        origin_id = {
            label: (phi_id if sig is PHI else sig_id[sig])
            for label, sig in origin.items()
        }
    except Exception:  # noqa: BLE001 - exotic algebra => scalar engines
        return None
    return _Kernel(sigs, key_id, trans, origin_id)


def _kernel_for(algebra: RoutingAlgebra, keys: Iterable[Hashable],
                origin_labels: Iterable[Hashable]) -> "_Kernel | None":
    """Cached tabulation, keyed isomorphism-invariantly.

    The canonical key makes relabeled copies of one algebra share a
    kernel across every scenario, seed and chunk in the process — the
    same dedup trick the verdict cache plays for the analyzer.
    """
    # Imported lazily: repro.campaigns imports repro.exec, so a module-level
    # import here would be circular.
    from ..campaigns.canonical import canonical_key

    vocab = (tuple(sorted(repr(k) for k in set(keys))),
             tuple(sorted(repr(l) for l in set(origin_labels))))
    # Instance-level memo first: ``supports()`` and the batched ``run()``
    # see the same materialized algebra object, so the (quadratic)
    # canonical keying is paid once per scenario, not once per call.
    memo = getattr(algebra, "_batch_kernel_memo", None)
    if memo is not None and vocab in memo:
        return memo[vocab]
    try:
        key = (repr(canonical_key(algebra)),) + vocab
    except Exception:  # noqa: BLE001 - uncanonicalizable => uncacheable
        return _build_kernel(algebra, keys, origin_labels)
    if key not in _KERNEL_CACHE:
        if len(_KERNEL_CACHE) >= _KERNEL_CACHE_MAX:
            _KERNEL_CACHE.clear()
        _KERNEL_CACHE[key] = _build_kernel(algebra, keys, origin_labels)
    kernel = _KERNEL_CACHE[key]
    try:
        if memo is None:
            memo = algebra._batch_kernel_memo = {}
        memo[vocab] = kernel
    except AttributeError:  # __slots__ algebra: process cache still applies
        pass
    return kernel


def clear_kernel_cache() -> None:
    """Drop tabulated kernels (benches isolating tabulation cost)."""
    _KERNEL_CACHE.clear()


def _transfer_key(algebra: RoutingAlgebra, out_label: Hashable,
                  in_label: Hashable) -> Hashable:
    """The vocabulary key of a directed ``u → v`` traversal, where the
    sender exports over ``label(u, v)`` and the receiver imports over
    ``label(v, u)``."""
    if isinstance(algebra, ExtendedAlgebra):
        return (out_label, in_label)
    return in_label


def _scan_topology(scenario: "Scenario") -> tuple[set, set, list]:
    """One pass over the starting topology: the transfer vocabulary the
    run can ever observe — every directed link traversal, plus the labels
    perturbation events may swap in (perturbations relabel both
    directions identically) — and the directed ``(u, v, key)`` edge list
    the relaxation compiles."""
    algebra = scenario.algebra
    paired = isinstance(algebra, ExtendedAlgebra)
    keys: set = set()
    origin_labels: set = set()
    edges: list = []
    for link in scenario.network.links():
        for u, v in ((link.a, link.b), (link.b, link.a)):
            out_label = link.labels.get((u, v))
            in_label = link.labels.get((v, u))
            key = (out_label, in_label) if paired else in_label
            keys.add(key)
            origin_labels.add(in_label)
            edges.append((u, v, key))
    for event in getattr(scenario, "events", ()):
        if event.kind == "perturb" and event.label is not None:
            keys.add(_transfer_key(algebra, event.label, event.label))
            origin_labels.add(event.label)
    return keys, origin_labels, edges


def _transfer_vocab(scenario: "Scenario") -> tuple[set, set]:
    """``(transfer keys, origin labels)`` of :func:`_scan_topology`."""
    keys, origin_labels, _edges = _scan_topology(scenario)
    return keys, origin_labels


def _patch_edges(scenario: "Scenario", edges: list,
                 events: Iterable["ResolvedEvent"]) -> list:
    """Re-derive the edge list after the event mask was applied: failed
    links drop out, perturbed links pick up their final-label key."""
    network = scenario.network  # already carries the final topology
    algebra = scenario.algebra
    paired = isinstance(algebra, ExtendedAlgebra)
    touched = set()
    for event in events:
        touched.add((event.a, event.b))
        touched.add((event.b, event.a))
    patched = []
    for u, v, key in edges:
        if (u, v) in touched:
            if not network.has_link(u, v):
                continue
            out_label = network.label(u, v)
            in_label = network.label(v, u)
            key = (out_label, in_label) if paired else in_label
        patched.append((u, v, key))
    return patched


def _apply_events(network, events: Iterable["ResolvedEvent"],
                  until: float | None) -> None:
    """Fold the event schedule into the topology (final state only).

    The unique stable state is history-independent, so *when* a failure
    fires is irrelevant — only whether it fires within the run budget.
    """
    for event in sorted(events, key=lambda e: e.time):
        if until is not None and event.time > until:
            continue  # the scalar timeline would never reach it either
        if not network.has_link(event.a, event.b):
            continue  # already failed (or never materialized): a no-op
        if event.kind == "fail":
            network.remove_link(event.a, event.b)
        elif event.kind == "perturb":
            network.set_label(event.a, event.b, event.label)
            network.set_label(event.b, event.a, event.label)


class _Problem:
    """One scenario compiled to integer arrays (all destinations)."""

    __slots__ = ("scenario", "kernel", "nodes", "node_index", "dests",
                 "edge_src", "edge_dst", "edge_lab", "state",
                 "_edge_src_list", "_edge_src_nodes", "_edge_dst_nodes")

    def __init__(self, scenario: "Scenario", kernel: _Kernel, edges: list):
        self.scenario = scenario
        self.kernel = kernel
        network = scenario.network
        self.nodes = sorted(network.nodes())
        self.node_index = {node: i for i, node in enumerate(self.nodes)}
        self.dests = list(scenario.destinations)
        # ``edges`` is the (u, v, key) list from _scan_topology (patched
        # for events): v learns from u; the key already encodes u's export
        # over L(u, v) and v's import over L(v, u) — the engines'
        # send/receive convention.
        node_index = self.node_index
        key_id = kernel.key_id
        src, dst, lab = [], [], []
        for u, v, key in edges:
            src.append(node_index[u])
            dst.append(node_index[v])
            lab.append(key_id[key])
        self.edge_src = _np.asarray(src, dtype=_np.int64)
        self.edge_dst = _np.asarray(dst, dtype=_np.int64)
        self.edge_lab = _np.asarray(lab, dtype=_np.int64)
        # Plain-python mirrors for the witness scan (numpy scalar access
        # in the rendering loop costs more than the relaxation itself).
        self._edge_src_list = src
        self._edge_src_nodes = [self.nodes[i] for i in src]
        self._edge_dst_nodes = [self.nodes[i] for i in dst]
        #: Filled by the relaxation: (dest, node) -> ordinal id.
        self.state = None

    def origin_candidates(self, dest: str) -> list[tuple[int, int]]:
        """(node_index, ordinal id) injected by origination at ``dest``."""
        network = self.scenario.network
        kernel = self.kernel
        candidates = []
        for neighbor in network.neighbors(dest):
            label = network.label(neighbor, dest)
            oid = kernel.origin_id[label]
            if oid != kernel.phi_id:
                candidates.append((self.node_index[neighbor], oid))
        return candidates

    # -- outcome rendering ------------------------------------------------------

    def outcome(self) -> ExecutionOutcome:
        routes: dict = {}
        sigs: dict = {}
        kernel = self.kernel
        phi = kernel.phi_id
        for di, dest in enumerate(self.dests):
            row = self.state[di]
            next_hop = self._next_hops(dest, row)
            paths = {dest: (dest,)}
            for node, sid in zip(self.nodes, row.tolist()):
                if node == dest:
                    continue
                if sid == phi:
                    routes[(node, dest)] = None
                    sigs[(node, dest)] = None
                else:
                    routes[(node, dest)] = self._path(node, next_hop, paths)
                    sigs[(node, dest)] = kernel.sigs[sid]
        return ExecutionOutcome(
            backend=BatchBackend.name,
            converged=True,
            stop_reason=StopReason.QUIESCENT,
            routes=routes,
            sigs=sigs,
        )

    def _next_hops(self, dest: str, row) -> dict:
        """One witness next hop per routed node, deterministically.

        Origination wins when it explains the node's id; otherwise the
        neighbor with the smallest ``(id, name)`` whose extension equals
        the node's id.  Ids strictly decrease along the chain (strict
        monotonicity), so following it always terminates at ``dest``.
        The witness test runs vectorized over the problem's edge arrays
        (one ``trans`` gather per destination) — table rendering used to
        dominate the whole batch run when done link-by-link in Python.
        """
        kernel = self.kernel
        phi = kernel.phi_id
        ids = row.tolist()
        nodes = self.nodes
        next_hop: dict = {}
        for node_idx, oid in self.origin_candidates(dest):
            if ids[node_idx] == oid:
                next_hop[nodes[node_idx]] = dest
        dest_idx = self.node_index[dest]
        src, dst, lab = self.edge_src, self.edge_dst, self.edge_lab
        witness = ((src != dest_idx) & (dst != dest_idx)
                   & (row[dst] != phi)
                   & (kernel.trans[lab, row[src]] == row[dst]))
        src_nodes, dst_nodes = self._edge_src_nodes, self._edge_dst_nodes
        src_idx = self._edge_src_list
        best: dict = {}
        for i in _np.nonzero(witness)[0].tolist():
            node = dst_nodes[i]
            if node in next_hop:  # origination already explains it
                continue
            candidate = (ids[src_idx[i]], src_nodes[i])
            if node not in best or candidate < best[node]:
                best[node] = candidate
        for node, (_nid, neighbor) in best.items():
            next_hop[node] = neighbor
        for node_idx, node in enumerate(nodes):
            if node != dest and node not in next_hop \
                    and ids[node_idx] != phi:
                # Unreachable with a verified kernel.
                raise RuntimeError(
                    f"no witness next hop for {node}->{dest} at rank "
                    f"{ids[node_idx]}")
        return next_hop

    def _path(self, node: str, next_hop: dict, paths: dict) -> tuple:
        """Path via ``next_hop``, memoizing shared suffixes in ``paths``."""
        chain = []
        cursor = node
        while cursor not in paths:
            chain.append(cursor)
            cursor = next_hop[cursor]
            if len(chain) > len(self.nodes):
                raise RuntimeError(f"next-hop cycle: {chain}")
        suffix = paths[cursor]
        for hop in reversed(chain):
            suffix = (hop,) + suffix
            paths[hop] = suffix
        return paths[node]


class VectorizedBatchSession(BatchExecutionSession):
    """All scenarios of one batch relaxed simultaneously.

    The session owns the scenarios it was prepared with (their networks
    are mutated by the event mask), mirroring the scalar contract.
    Scenarios may mix algebras/families: problems are grouped per kernel
    and each group is one flat struct-of-arrays relaxation.
    """

    def __init__(self, scenarios: Iterable["Scenario"]):
        if _np is None:
            raise RuntimeError(
                "the batch backend requires numpy (not installed)")
        self.scenarios = list(scenarios)
        self._event_overrides: dict[int, list] = {}

    def override_events(self, index: int, events: list) -> None:
        """Replace ``scenarios[index]``'s schedule (scalar-adapter hook)."""
        self._event_overrides[index] = list(events)

    def run(self) -> list[ExecutionOutcome]:
        problems = []
        for index, scenario in enumerate(self.scenarios):
            keys, origin_labels, edges = _scan_topology(scenario)
            kernel = _kernel_for(scenario.algebra, keys, origin_labels)
            if kernel is None:
                raise ValueError(
                    f"scenario {getattr(scenario.spec, 'scenario_id', '?')} "
                    f"is not batchable (algebra {scenario.algebra.name!r}); "
                    f"callers must filter with BatchBackend.supports()")
            events = self._event_overrides.get(index, scenario.events)
            until = getattr(scenario.spec, "until", None)
            _apply_events(scenario.network, events, until)
            if events:
                edges = _patch_edges(scenario, edges, events)
            problems.append(_Problem(scenario, kernel, edges))
        groups: dict[int, list[_Problem]] = {}
        for problem in problems:
            groups.setdefault(id(problem.kernel), []).append(problem)
        for group in groups.values():
            _relax_group(group)
        return [problem.outcome() for problem in problems]


def _relax_group(group: list["_Problem"]) -> None:
    """Synchronous Bellman-Ford rounds over one kernel's flat arrays."""
    kernel = group[0].kernel
    phi = kernel.phi_id
    src_parts, dst_parts, lab_parts = [], [], []
    orig_pos, orig_val = [], []
    blocks = []  # (problem, dest index, flat offset)
    offset = 0
    for problem in group:
        width = len(problem.nodes)
        for di, dest in enumerate(problem.dests):
            blocks.append((problem, di, offset))
            dest_idx = problem.node_index[dest]
            # The destination neither originates from others nor transits
            # its own routes: drop every edge touching it in this copy.
            keep = (problem.edge_src != dest_idx) \
                & (problem.edge_dst != dest_idx)
            src_parts.append(problem.edge_src[keep] + offset)
            dst_parts.append(problem.edge_dst[keep] + offset)
            lab_parts.append(problem.edge_lab[keep])
            for node_idx, oid in problem.origin_candidates(dest):
                orig_pos.append(offset + node_idx)
                orig_val.append(oid)
            offset += width
    state = _np.full(offset, phi, dtype=_np.int32)
    if orig_pos:
        _np.minimum.at(state, _np.asarray(orig_pos, dtype=_np.int64),
                       _np.asarray(orig_val, dtype=_np.int32))
    if src_parts:
        src = _np.concatenate(src_parts)
        dst = _np.concatenate(dst_parts)
        lab = _np.concatenate(lab_parts)
        trans = kernel.trans
        # Ranks only ever improve, and each ⊕ strictly increases the
        # rank, so the monotone iteration reaches the unique fixpoint in
        # at most |Σ| rounds; the +2 cap is a pure safety net.
        for _round in range(phi + 2):
            before = state.copy()
            _np.minimum.at(state, dst, trans[lab, state[src]])
            if _np.array_equal(before, state):
                break
        else:  # pragma: no cover - unreachable with a verified kernel
            raise RuntimeError("batch relaxation failed to reach fixpoint")
    for problem, di, off in blocks:
        if problem.state is None:
            problem.state = _np.empty((len(problem.dests),
                                       len(problem.nodes)),
                                      dtype=_np.int32)
        problem.state[di] = state[off:off + len(problem.nodes)]


class BatchSession(ExecutionSession):
    """Scalar adapter: one scenario through the vectorized kernel.

    Keeps the batch backend usable through the ordinary
    ``prepare / schedule_events / run`` lifecycle (conformance suite,
    single-scenario oracle fallback).  There is no simulator: the event
    schedule arrives wholesale via :meth:`schedule` and is folded into
    the final topology before one batch-of-one relaxation.
    """

    def __init__(self, scenario: "Scenario", *, seed: int = 0,
                 log_routes: bool = False):
        if log_routes:
            raise ValueError(
                "the batch backend computes fixpoints, not advertisement "
                "logs; prepare a scalar backend for route logging")
        self.scenario = scenario
        self.algebra = scenario.algebra
        self.destinations = list(scenario.destinations)
        self.route_log: list = []
        self._events: list | None = None
        self._table: tuple[dict, dict] | None = None

    @property
    def network(self):
        return self.scenario.network

    def schedule(self, events: list) -> None:
        """Receive the pre-run schedule (via ``schedule_events``)."""
        self._events = list(events)

    def apply_event(self, event: "ResolvedEvent") -> None:
        """Immediate application (the final topology is all that matters)."""
        _apply_events(self.scenario.network, [event], None)

    def run(self, until: float | None = None,
            max_events: int | None = None) -> ExecutionOutcome:
        inner = VectorizedBatchSession([self.scenario])
        if self._events is not None:
            inner.override_events(0, self._events)
        outcome = inner.run()[0]
        self._table = (outcome.routes, outcome.sigs)
        return outcome

    def route_table(self) -> tuple[dict, dict]:
        if self._table is None:
            raise RuntimeError("route_table() before run()")
        return self._table


class BatchBackend(ExecutionBackend):
    """The vectorized fixpoint backend (``batch``)."""

    name = "batch"

    def supports(self, scenario: "Scenario") -> bool:
        """Batchable = the fixpoint shortcut provably equals the engines.

        A scenario is batchable when every one of these holds:

        * numpy is importable;
        * single-path selection (``top_k == 1``) without route logging —
          the kernel has no advertisement stream to log;
        * the analysis subject is known up front (iBGP-style post-run
          extraction needs a scalar primary backend);
        * the algebra is rank-tabulable: not path-valued (SPP gadgets),
          not the domain-path HLP cost algebra, and its reachable
          signature closure over the scenario's directed transfer
          vocabulary is within budget and **verified strictly monotonic**
          (non-strict draws like plain Gao-Rexford fall back to the
          scalar engines);
        * the topology is within the node budget.
        """
        if _np is None:
            return False
        if getattr(scenario, "top_k", 1) != 1:
            return False
        if getattr(scenario, "log_routes", False):
            return False
        if getattr(scenario, "analysis_subject", "missing") is None:
            return False
        algebra = scenario.algebra
        if isinstance(algebra, (SPPAlgebra, HLPCostAlgebra)):
            return False
        if scenario.network.node_count() > MAX_NODES:
            return False
        keys, origin_labels = _transfer_vocab(scenario)
        if None in origin_labels:
            return False
        return _kernel_for(algebra, keys, origin_labels) is not None

    def prepare(self, scenario: "Scenario", *, seed: int = 0,
                log_routes: bool = False) -> BatchSession:
        return BatchSession(scenario, seed=seed, log_routes=log_routes)

    def prepare_batch(self, scenarios: Iterable["Scenario"]
                      ) -> VectorizedBatchSession:
        return VectorizedBatchSession(scenarios)
