"""Vectorized batch execution backend: thousands of scenarios per call.

The scalar engines (GPV, NDlog) simulate every advertisement of every
scenario through a discrete-event loop — faithful, and the differential
ground truth, but the campaign hot path.  This backend exploits the
theorem the whole toolkit is built on: for a **strictly monotonic**
algebra the protocol's converged best-route table *is* the unique
Bellman-Ford fixpoint of the final topology (paper Thm. 4.1 plus
uniqueness of the stable state), independent of message timing, event
interleaving, or advertisement batching.  So instead of simulating, it:

1. **tabulates the algebra ordinally** — the reachable signature closure
   (origin signatures extended by every observed label) is rank-sorted
   into integer ids where *smaller id == more preferred*, with φ as the
   largest absorbing *routable* id and a distinct **hole** sentinel
   (``hole_id == phi_id + 1``) for extensions whose true value lies past
   the closure depth horizon; ⊕ becomes one ``int32`` lookup table
   ``trans[label, sig] -> sig`` (the canonicalizer's ordinal-rank
   rendering, promoted to an execution kernel).  Strict monotonicity is
   *verified* for every tabulated entry — in-table extensions must carry
   a strictly larger id, hole extensions are preference-checked against
   their source — and any violation marks the algebra unsupported;
2. **applies each scenario's event mask up front** — link failures
   remove links, perturbations relabel them; history-independence of
   the unique stable state makes the final topology sufficient;
3. **relaxes all scenarios at once** in struct-of-arrays form: one flat
   ``int32`` state vector over every (scenario, destination, node)
   triple, one flat directed-edge list, and synchronous numpy rounds
   until fixpoint.  *Isotone* kernels (rank tables monotone in
   preference space) use accumulating ``np.minimum.at`` rounds — holes
   rank worse than φ, so a depth-truncated value can never win the min
   and the fixpoint provably equals the scalar engines' stable state.
   *Monotone-only* kernels (strictly monotonic but genuinely
   non-isotone, e.g. the Gao-Rexford × hopcount products) run an honest
   synchronous Jacobi iteration — one fair activation schedule of the
   protocol the safety theorem proves convergent — and **decline at run
   time** (:class:`BatchDeclined`) the moment a transient value would
   read a hole entry, or if the iteration fails to settle.

Scenarios whose semantics the fixpoint shortcut cannot reproduce are
declared unsupported (see :meth:`BatchBackend.supports`) and stay on the
scalar engines; the scalar↔batched differential in the campaign oracle
and the fixed-seed equality gate in ``benchmarks/`` keep the fast path
honest.

Tabulation cost is amortized three ways: a per-algebra-instance memo, a
process-wide cache under canonical algebra keys, and an optional
**persistent kernel store** (:mod:`repro.exec.kernel_store`, enabled via
:func:`configure_kernel_store` or ``$REPRO_BATCH_KERNEL_CACHE``) shared
by fleet workers and repeat campaigns.  The store is the documented seam
for future GPU/mypyc/Rust kernel drop-ins: anything that can produce the
``trans`` table for a canonical key can serve it from there.

numpy is optional: without it the backend simply supports nothing, so
campaigns degrade to the scalar engines instead of failing to import.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import TYPE_CHECKING, Hashable, Iterable

try:  # gated: the toolkit must import (and run scalar) without numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less boxes
    _np = None

from ..algebra.base import PHI, Pref, RoutingAlgebra, rank_sort
from ..algebra.extended import ExtendedAlgebra
from ..algebra.hlp import HLPCostAlgebra
from ..algebra.spp import SPPAlgebra
from ..net.simulator import StopReason
from .base import (
    BatchExecutionSession,
    ExecutionBackend,
    ExecutionOutcome,
    ExecutionSession,
)

if TYPE_CHECKING:
    from ..campaigns.scenarios import ResolvedEvent, Scenario

#: Structural limits of the kernel: the ordinal table must stay small
#: enough that tabulation is cheaper than the simulations it replaces.
MAX_NODES = 64
MAX_SIGNATURES = 4096
MAX_CLOSURE_DEPTH = 64

#: algebra canonical key + observed label set -> kernel (None = unsupported).
_KERNEL_CACHE: dict[tuple, "_Kernel | None"] = {}
_KERNEL_CACHE_MAX = 256

#: Environment variable naming the persistent kernel store (sqlite).
KERNEL_CACHE_ENV = "REPRO_BATCH_KERNEL_CACHE"

#: Round budget multiplier for the monotone-mode Jacobi iteration.
_MONOTONE_ROUND_SLACK = 4

_KERNEL_STATS = {
    "memo_hits": 0,        # per-algebra-instance memo
    "cache_hits": 0,       # process-wide canonical-key cache
    "cache_misses": 0,
    "store_hits": 0,       # persistent kernel store
    "store_misses": 0,
    "tabulations": 0,      # closures actually computed this process
    "tabulation_s": 0.0,
    "runtime_declines": 0,  # monotone-mode BatchDeclined bails
}

#: Persistent store state (fork-guarded; see configure_kernel_store).
_STORE = None
_STORE_PATH: str | None = None
_STORE_PID: int | None = None
_STORE_RESOLVED = False


class BatchDeclined(RuntimeError):
    """A supported-looking scenario must fall back to scalar at run time.

    Raised only by *monotone-mode* kernels: their Jacobi iteration is
    sound exactly while every transient value stays inside the tabulated
    closure, so reading a beyond-horizon hole — or failing to settle
    within the round budget — aborts the batch answer rather than risk a
    wrong one.  Callers (oracle, scalar adapter) treat it as "scenario
    not batchable after all", never as an execution error.
    """


def kernel_cache_stats() -> dict:
    """Snapshot of kernel amortization counters (benchmark/CI telemetry)."""
    return dict(_KERNEL_STATS)


def reset_kernel_cache_stats() -> None:
    for key in _KERNEL_STATS:
        _KERNEL_STATS[key] = 0.0 if key == "tabulation_s" else 0


def numpy_available() -> bool:
    """Whether the vectorized backend can run at all in this process."""
    return _np is not None


def _transfer(algebra: RoutingAlgebra, key: Hashable, sig):
    """One directed link traversal, exactly as the scalar engines do it.

    For :class:`ExtendedAlgebra` the key is the directed
    ``(export label, import label)`` pair — the sender filters with ⊕E
    over *its* side's label and the receiver filters (⊕I) and extends
    (⊕P) over the reverse direction's label, mirroring the GPV/NDlog
    send/receive split.  Plain algebras have a single combined ⊕ and the
    key is the receiver-side label alone.
    """
    if sig is PHI:
        return PHI
    if isinstance(algebra, ExtendedAlgebra):
        out_label, in_label = key
        if not algebra.export_allows(out_label, sig):
            return PHI
        if not algebra.import_allows(in_label, sig):
            return PHI
        return algebra.concat(in_label, sig)
    return algebra.oplus(key, sig)


def _origin_sig(algebra: RoutingAlgebra, label: Hashable):
    """One-hop origination, with the engines' undefined-label semantics
    (a label the algebra cannot originate over simply yields no route)."""
    try:
        return algebra.origin_signature(label)
    except (KeyError, NotImplementedError):
        return PHI


class _Kernel:
    """One algebra tabulated over one transfer vocabulary, as integer ranks.

    ``sigs[i]`` is the representative signature of ordinal id ``i`` (rank
    order, ties broken by ``repr`` so ids are deterministic); ``phi_id ==
    len(sigs)`` is φ and ``hole_id == phi_id + 1`` the beyond-horizon
    sentinel.  ``trans[key_id, sig_id]`` is the id of the signature after
    one directed link traversal (genuine filters map to ``phi_id``,
    depth-truncated extensions to ``hole_id``), and ``origin_id[label]``
    the id of the one-hop origination signature over an import label.
    Strict monotonicity makes every in-table ``trans`` entry strictly
    larger than its source id — the property both the fixpoint argument
    and the next-hop reconstruction lean on.

    ``pref_class[i]`` is the *preference class* of id ``i``: adjacent
    rank-sorted signatures that compare EQUAL share a class, φ is the
    strictly-worst real class, and the hole sentinel sits above even
    that (so it can never win a min).  ``mode`` records which relaxation
    the gate licensed: ``"isotone"`` (accumulating min, exact) or
    ``"monotone"`` (synchronous Jacobi with run-time hole bail-out).
    """

    __slots__ = ("sigs", "sig_id", "phi_id", "hole_id", "key_id", "trans",
                 "origin_id", "pref_class", "mode", "hole_count")

    def __init__(self, sigs: list, key_id: dict, trans, origin_id: dict,
                 pref_class, mode: str, hole_count: int):
        self.sigs = sigs
        self.sig_id = {sig: i for i, sig in enumerate(sigs)}
        self.phi_id = len(sigs)
        self.hole_id = len(sigs) + 1
        self.key_id = key_id
        self.trans = trans
        self.origin_id = origin_id
        self.pref_class = pref_class
        self.mode = mode
        self.hole_count = hole_count


def _pref_classes(algebra: RoutingAlgebra, sigs: list):
    """id -> preference class over ``sigs`` + φ + hole (ascending = worse)."""
    classes = _np.empty(len(sigs) + 2, dtype=_np.int32)
    cls = 0
    for i, sig in enumerate(sigs):
        if i and algebra.preference(sigs[i - 1], sig) is not Pref.EQUAL:
            cls += 1
        classes[i] = cls
    classes[len(sigs)] = cls + 1      # φ: strictly worse than every route
    classes[len(sigs) + 1] = cls + 2  # hole: worse still, never compared
    return classes


def _classify_kernel(trans, pref_class, phi_id: int, hole_id: int
                     ) -> str | None:
    """Which relaxation the rank tables license: the hole-aware gate.

    ``"isotone"`` — every row, restricted to its non-hole entries, is
    non-decreasing in *preference class* and preference-constant within
    each input tie class (i.e. the true algebra is isotone on the whole
    tabulated closure, ties included, with genuine φ as the worst
    class).  Then accumulating min-relaxation is exact: every stable or
    simple-path value uses ≤ ``MAX_NODES - 1`` transfers and so lives
    inside the depth-``MAX_CLOSURE_DEPTH`` closure, holes only ever
    appear on loopy transients and rank below φ, and the classical
    de-looping argument needs isotonicity only at in-table points.

    ``"monotone"`` — not isotone, but every row *respects ties*: within
    each input tie class the non-hole outputs are preference-EQUAL and
    holes don't mix with non-holes (a mix would leave tie-respect
    unverifiable).  Strict monotonicity + tie-respect make the stable
    state unique up to preference-equality, which licenses the Jacobi
    iteration — provided no transient reads a hole, enforced at run
    time.

    ``None`` — neither; the algebra stays on the scalar engines.
    """
    n = phi_id  # number of real signature ids
    in_cls = pref_class[:n]
    isotone = True
    for row in trans[:, :n]:
        mask = row != hole_id
        oc = pref_class[row[mask]]
        ic = in_cls[mask]
        if oc.size > 1:
            # Non-hole entries stay contiguous per tie class (ids are
            # rank-sorted), so adjacent masked pairs cover every in-table
            # comparison the exactness proof performs — holes constrain
            # nothing, they only ever appear on loopy transients.
            d_oc = _np.diff(oc)
            if _np.any(d_oc < 0) \
                    or _np.any((_np.diff(ic) == 0) & (d_oc != 0)):
                isotone = False
                break
    if isotone:
        return "isotone"
    # Tie-respect alone: per row, per input tie class — no hole/non-hole
    # mix, and all non-hole outputs in one preference class.
    for row in trans[:, :n]:
        boundaries = _np.flatnonzero(_np.diff(in_cls)) + 1
        for seg in _np.split(_np.arange(n), boundaries):
            entries = row[seg]
            holes = entries == hole_id
            if bool(_np.any(holes)):
                if not bool(_np.all(holes)):
                    return None  # mixed class: tie-respect unverifiable
                continue
            if _np.unique(pref_class[entries]).size > 1:
                return None
    return "monotone"


def _build_kernel(algebra: RoutingAlgebra, keys: Iterable[Hashable],
                  origin_labels: Iterable[Hashable]) -> "_Kernel | None":
    """Tabulate ``algebra`` over a transfer vocabulary; None if unbatchable.

    Unsupported means: the reachable closure does not stay within the
    size budget, some tabulated extension is not *strictly* worse than
    its source signature (without strict monotonicity the fixpoint need
    not equal the protocol's outcome, or even be unique), or the rank
    tables pass neither leg of the hole-aware gate
    (:func:`_classify_kernel`).

    The closure is *depth*-truncated, not required to be closed:
    additive metrics (shortest-path, hop counts) have infinite signature
    spaces, but every stable-state and simple-path value on a
    ``MAX_NODES``-bounded topology uses at most ``MAX_NODES - 1``
    transfers and so lies within the depth-``MAX_CLOSURE_DEPTH``
    closure.  Extensions past the horizon are tabulated as the explicit
    **hole** sentinel (strictness still preference-verified), so the
    gate can reason about them instead of conflating them with φ.
    """
    ordered_keys = sorted(set(keys), key=repr)
    try:
        origin = {label: _origin_sig(algebra, label)
                  for label in sorted(set(origin_labels), key=repr)}
        seen = {sig for sig in origin.values() if sig is not PHI}
        frontier = list(seen)
        depth = 0
        while frontier:
            depth += 1
            if depth > MAX_CLOSURE_DEPTH:
                break  # deeper values are loopy-walk-only: tabulate as φ
            fresh = []
            for sig in frontier:
                for key in ordered_keys:
                    extended = _transfer(algebra, key, sig)
                    if extended is PHI:
                        continue
                    if algebra.preference(sig, extended) is not Pref.BETTER:
                        return None  # not strictly monotonic
                    if extended not in seen:
                        seen.add(extended)
                        fresh.append(extended)
                        if len(seen) > MAX_SIGNATURES:
                            return None
            frontier = fresh
        sigs = rank_sort(algebra, sorted(seen, key=repr))
        sig_id = {sig: i for i, sig in enumerate(sigs)}
        phi_id = len(sigs)
        hole_id = phi_id + 1
        key_id = {key: i for i, key in enumerate(ordered_keys)}
        # trans columns: real ids, then φ (absorbing), then hole (absorbing).
        trans = _np.full((max(len(ordered_keys), 1), hole_id + 1), phi_id,
                         dtype=_np.int32)
        trans[:, hole_id] = hole_id
        hole_count = 0
        for key, ki in key_id.items():
            for sig, si in sig_id.items():
                extended = _transfer(algebra, key, sig)
                if extended is PHI:
                    continue
                ti = sig_id.get(extended)
                if ti is None:
                    # Beyond the depth horizon: an explicit hole, still
                    # required to strictly worsen its source.
                    if algebra.preference(sig, extended) is not Pref.BETTER:
                        return None
                    trans[ki, si] = hole_id
                    hole_count += 1
                    continue
                if ti <= si:  # a rank tie would break the id ordering
                    return None
                trans[ki, si] = ti
        pref_class = _pref_classes(algebra, sigs)
        # The hole-aware gate: which relaxation (if any) the tables
        # license.  Strict inflation alone does not make min-relaxation
        # exact (BGP-like algebras are famously non-isotone); isotone
        # tables get the accumulating min, tie-respecting tables get the
        # Jacobi iteration, everything else stays scalar.
        mode = _classify_kernel(trans, pref_class, phi_id, hole_id)
        if mode is None:
            return None
        origin_id = {
            label: (phi_id if sig is PHI else sig_id[sig])
            for label, sig in origin.items()
        }
    except Exception:  # noqa: BLE001 - exotic algebra => scalar engines
        return None
    return _Kernel(sigs, key_id, trans, origin_id, pref_class, mode,
                   hole_count)


def _timed_build(algebra: RoutingAlgebra, keys: Iterable[Hashable],
                 origin_labels: Iterable[Hashable]) -> "_Kernel | None":
    started = time.perf_counter()
    kernel = _build_kernel(algebra, keys, origin_labels)
    _KERNEL_STATS["tabulations"] += 1
    _KERNEL_STATS["tabulation_s"] += time.perf_counter() - started
    return kernel


def configure_kernel_store(path: str | None = None) -> None:
    """Open (or switch) the persistent kernel store for this process.

    ``path=None`` falls back to ``$REPRO_BATCH_KERNEL_CACHE`` (no store
    when that is unset too).  Idempotent per ``(path, pid)``; forked
    workers transparently reopen their own connection.  A store that
    fails to open degrades to in-process caching only — the batch
    backend never hard-fails on cache trouble.
    """
    global _STORE, _STORE_PATH, _STORE_PID, _STORE_RESOLVED
    resolved = path if path is not None \
        else (os.environ.get(KERNEL_CACHE_ENV) or None)
    if _STORE_RESOLVED and resolved == _STORE_PATH \
            and _STORE_PID == os.getpid():
        return
    if _STORE is not None:
        try:
            _STORE.close()
        except Exception:  # noqa: BLE001
            pass
    _STORE = None
    _STORE_PATH = resolved
    _STORE_PID = os.getpid()
    _STORE_RESOLVED = True
    if resolved is not None and _np is not None:
        from .kernel_store import KernelStore
        try:
            _STORE = KernelStore(resolved)
        except Exception:  # noqa: BLE001 - unusable store => in-memory only
            _STORE = None


def _active_store():
    if not _STORE_RESOLVED or _STORE_PID != os.getpid():
        configure_kernel_store(_STORE_PATH if _STORE_RESOLVED else None)
    return _STORE


def _encode_kernel(kernel: "_Kernel | None") -> bytes | None:
    """Kernel -> store payload (None encodes a cached negative result)."""
    if kernel is None:
        return None
    ordered_keys = sorted(kernel.key_id, key=kernel.key_id.get)
    return pickle.dumps({
        "sigs": kernel.sigs,
        "keys": ordered_keys,
        "origin_id": kernel.origin_id,
        "trans": kernel.trans.tobytes(),
        "shape": kernel.trans.shape,
        "pref_class": kernel.pref_class.tobytes(),
        "mode": kernel.mode,
        "hole_count": kernel.hole_count,
    }, protocol=pickle.HIGHEST_PROTOCOL)


def _decode_kernel(payload: bytes | None) -> "_Kernel | None":
    if payload is None:
        return None
    body = pickle.loads(payload)
    trans = _np.frombuffer(body["trans"], dtype=_np.int32) \
        .reshape(body["shape"]).copy()
    pref_class = _np.frombuffer(body["pref_class"], dtype=_np.int32).copy()
    key_id = {key: i for i, key in enumerate(body["keys"])}
    return _Kernel(body["sigs"], key_id, trans, body["origin_id"],
                   pref_class, body["mode"], body["hole_count"])


def _canonical_repr(algebra: RoutingAlgebra) -> str:
    """``repr(canonical_key(algebra))``, memoized on the instance.

    Canonicalizing a table algebra is a refinement search; ``supports()``,
    the batched ``run()`` and the oracle's kernel-keyed chunk grouping
    all want the same rendering of the same materialized instance, so it
    is paid once per instance, not once per question.
    """
    cached = getattr(algebra, "_batch_canonical_repr", None)
    if cached is not None:
        return cached
    from ..campaigns.canonical import canonical_key

    rendered = repr(canonical_key(algebra))
    try:
        algebra._batch_canonical_repr = rendered
    except AttributeError:  # __slots__ algebra: recompute per call
        pass
    return rendered


def _kernel_for(algebra: RoutingAlgebra, keys: Iterable[Hashable],
                origin_labels: Iterable[Hashable]) -> "_Kernel | None":
    """Cached tabulation, keyed isomorphism-invariantly.

    The canonical key makes relabeled copies of one algebra share a
    kernel across every scenario, seed and chunk in the process — the
    same dedup trick the verdict cache plays for the analyzer — and,
    when a persistent store is configured, across processes, fleet
    workers and repeat campaigns too.
    """
    vocab = (tuple(sorted(repr(k) for k in set(keys))),
             tuple(sorted(repr(l) for l in set(origin_labels))))
    # Instance-level memo first: ``supports()`` and the batched ``run()``
    # see the same materialized algebra object, so the canonical keying
    # is paid once per scenario, not once per call.
    memo = getattr(algebra, "_batch_kernel_memo", None)
    if memo is not None and vocab in memo:
        _KERNEL_STATS["memo_hits"] += 1
        return memo[vocab]
    try:
        key = (_canonical_repr(algebra),) + vocab
    except Exception:  # noqa: BLE001 - uncanonicalizable => uncacheable
        return _timed_build(algebra, keys, origin_labels)
    if key in _KERNEL_CACHE:
        _KERNEL_STATS["cache_hits"] += 1
    else:
        _KERNEL_STATS["cache_misses"] += 1
        if len(_KERNEL_CACHE) >= _KERNEL_CACHE_MAX:
            _KERNEL_CACHE.clear()
        kernel = _UNSET = object()
        store = _active_store()
        if store is not None:
            found, payload = store.get(repr(key))
            if found:
                try:
                    kernel = _decode_kernel(payload)
                    _KERNEL_STATS["store_hits"] += 1
                except Exception:  # noqa: BLE001 - stale/corrupt row
                    kernel = _UNSET
            if kernel is _UNSET:
                _KERNEL_STATS["store_misses"] += 1
        if kernel is _UNSET:
            kernel = _timed_build(algebra, keys, origin_labels)
            if store is not None:
                try:
                    store.put(repr(key), _encode_kernel(kernel))
                except Exception:  # noqa: BLE001 - cache write, best-effort
                    pass
        _KERNEL_CACHE[key] = kernel
    kernel = _KERNEL_CACHE[key]
    try:
        if memo is None:
            memo = algebra._batch_kernel_memo = {}
        memo[vocab] = kernel
    except AttributeError:  # __slots__ algebra: process cache still applies
        pass
    return kernel


def clear_kernel_cache() -> None:
    """Drop tabulated kernels (benches isolating tabulation cost)."""
    _KERNEL_CACHE.clear()


def kernel_key_of(scenario: "Scenario"):
    """The canonical kernel key a scenario's batch execution will use.

    ``(canonical algebra key, transfer vocabulary)`` — scenarios sharing
    it share one tabulation *and* one relaxation call, which is what the
    oracle's kernel-keyed chunk grouping sorts by.  ``None`` when the
    algebra cannot be canonicalized (still batchable, just uncacheable).
    """
    keys, origin_labels = _transfer_vocab(scenario)
    vocab = (tuple(sorted(repr(k) for k in set(keys))),
             tuple(sorted(repr(l) for l in set(origin_labels))))
    try:
        return (_canonical_repr(scenario.algebra),) + vocab
    except Exception:  # noqa: BLE001
        return None


def _transfer_key(algebra: RoutingAlgebra, out_label: Hashable,
                  in_label: Hashable) -> Hashable:
    """The vocabulary key of a directed ``u → v`` traversal, where the
    sender exports over ``label(u, v)`` and the receiver imports over
    ``label(v, u)``."""
    if isinstance(algebra, ExtendedAlgebra):
        return (out_label, in_label)
    return in_label


def _scan_topology(scenario: "Scenario") -> tuple[set, set, list]:
    """One pass over the starting topology: the transfer vocabulary the
    run can ever observe — every directed link traversal, plus the labels
    perturbation events may swap in (perturbations relabel both
    directions identically) — and the directed ``(u, v, key)`` edge list
    the relaxation compiles."""
    algebra = scenario.algebra
    paired = isinstance(algebra, ExtendedAlgebra)
    keys: set = set()
    origin_labels: set = set()
    edges: list = []
    for link in scenario.network.links():
        for u, v in ((link.a, link.b), (link.b, link.a)):
            out_label = link.labels.get((u, v))
            in_label = link.labels.get((v, u))
            key = (out_label, in_label) if paired else in_label
            keys.add(key)
            origin_labels.add(in_label)
            edges.append((u, v, key))
    for event in getattr(scenario, "events", ()):
        if event.kind == "perturb" and event.label is not None:
            keys.add(_transfer_key(algebra, event.label, event.label))
            origin_labels.add(event.label)
        elif event.kind == "hijack" and event.label is not None:
            # Forged origination: the attacker's pseudo-label enters the
            # origin vocabulary (its forged signature seeds the closure)
            # but adds no transfer key — the hijacked route propagates
            # over the ordinary link vocabulary.
            origin_labels.add(event.label)
    return keys, origin_labels, edges


def _transfer_vocab(scenario: "Scenario") -> tuple[set, set]:
    """``(transfer keys, origin labels)`` of :func:`_scan_topology`."""
    keys, origin_labels, _edges = _scan_topology(scenario)
    return keys, origin_labels


def _patch_edges(scenario: "Scenario", edges: list,
                 events: Iterable["ResolvedEvent"]) -> list:
    """Re-derive the edge list after the event mask was applied: failed
    links drop out, perturbed links pick up their final-label key."""
    network = scenario.network  # already carries the final topology
    algebra = scenario.algebra
    paired = isinstance(algebra, ExtendedAlgebra)
    touched = set()
    for event in events:
        if event.kind == "hijack":
            continue  # no link behind a forged origination
        touched.add((event.a, event.b))
        touched.add((event.b, event.a))
    patched = []
    for u, v, key in edges:
        if (u, v) in touched:
            if not network.has_link(u, v):
                continue
            out_label = network.label(u, v)
            in_label = network.label(v, u)
            key = (out_label, in_label) if paired else in_label
        patched.append((u, v, key))
    return patched


def _apply_events(network, events: Iterable["ResolvedEvent"],
                  until: float | None) -> None:
    """Fold the event schedule into the topology (final state only).

    The unique stable state is history-independent, so *when* a failure
    fires is irrelevant — only whether it fires within the run budget.
    """
    for event in sorted(events, key=lambda e: e.time):
        if until is not None and event.time > until:
            continue  # the scalar timeline would never reach it either
        if event.kind == "hijack":
            continue  # topology-free; seeded via _Problem.origin_candidates
        if not network.has_link(event.a, event.b):
            continue  # already failed (or never materialized): a no-op
        if event.kind == "fail":
            network.remove_link(event.a, event.b)
        elif event.kind == "perturb":
            network.set_label(event.a, event.b, event.label)
            network.set_label(event.b, event.a, event.label)


class _Problem:
    """One scenario compiled to integer arrays (all destinations)."""

    __slots__ = ("scenario", "kernel", "nodes", "node_index", "dests",
                 "edge_src", "edge_dst", "edge_lab", "state", "hijacks",
                 "_edge_src_list", "_edge_src_nodes", "_edge_dst_nodes")

    def __init__(self, scenario: "Scenario", kernel: _Kernel, edges: list,
                 hijacks: list | None = None):
        self.scenario = scenario
        self.kernel = kernel
        #: Active forged originations as ``(attacker, dest, label)`` —
        #: hijack events whose fire time is within the run budget.
        self.hijacks = list(hijacks or ())
        network = scenario.network
        self.nodes = sorted(network.nodes())
        self.node_index = {node: i for i, node in enumerate(self.nodes)}
        self.dests = list(scenario.destinations)
        # ``edges`` is the (u, v, key) list from _scan_topology (patched
        # for events): v learns from u; the key already encodes u's export
        # over L(u, v) and v's import over L(v, u) — the engines'
        # send/receive convention.
        node_index = self.node_index
        key_id = kernel.key_id
        src, dst, lab = [], [], []
        for u, v, key in edges:
            src.append(node_index[u])
            dst.append(node_index[v])
            lab.append(key_id[key])
        self.edge_src = _np.asarray(src, dtype=_np.int64)
        self.edge_dst = _np.asarray(dst, dtype=_np.int64)
        self.edge_lab = _np.asarray(lab, dtype=_np.int64)
        # Plain-python mirrors for the witness scan (numpy scalar access
        # in the rendering loop costs more than the relaxation itself).
        self._edge_src_list = src
        self._edge_src_nodes = [self.nodes[i] for i in src]
        self._edge_dst_nodes = [self.nodes[i] for i in dst]
        #: Filled by the relaxation: (dest, node) -> ordinal id.
        self.state = None

    def origin_candidates(self, dest: str) -> list[tuple[int, int]]:
        """(node_index, ordinal id) injected by origination at ``dest``."""
        network = self.scenario.network
        kernel = self.kernel
        candidates = []
        for neighbor in network.neighbors(dest):
            label = network.label(neighbor, dest)
            oid = kernel.origin_id[label]
            if oid != kernel.phi_id:
                candidates.append((self.node_index[neighbor], oid))
        for attacker, target, label in self.hijacks:
            # A forged origination is an extra seed at the attacker — no
            # link behind it, competing with anything the attacker learns
            # legitimately, exactly the scalar engines' inject_route.
            if target != dest:
                continue
            oid = kernel.origin_id[label]
            if oid != kernel.phi_id:
                candidates.append((self.node_index[attacker], oid))
        return candidates

    # -- outcome rendering ------------------------------------------------------

    def outcome(self) -> ExecutionOutcome:
        routes: dict = {}
        sigs: dict = {}
        kernel = self.kernel
        phi = kernel.phi_id
        for di, dest in enumerate(self.dests):
            row = self.state[di]
            next_hop = self._next_hops(dest, row)
            paths = {dest: (dest,)}
            for node, sid in zip(self.nodes, row.tolist()):
                if node == dest:
                    continue
                if sid == phi:
                    routes[(node, dest)] = None
                    sigs[(node, dest)] = None
                else:
                    routes[(node, dest)] = self._path(node, next_hop, paths)
                    sigs[(node, dest)] = kernel.sigs[sid]
        return ExecutionOutcome(
            backend=BatchBackend.name,
            converged=True,
            stop_reason=StopReason.QUIESCENT,
            routes=routes,
            sigs=sigs,
        )

    def _next_hops(self, dest: str, row) -> dict:
        """One witness next hop per routed node, deterministically.

        Origination wins when it explains the node's id; otherwise the
        neighbor with the smallest ``(id, name)`` whose extension equals
        the node's id.  Ids strictly decrease along the chain (strict
        monotonicity), so following it always terminates at ``dest``.
        The witness test runs vectorized over the problem's edge arrays
        (one ``trans`` gather per destination) — table rendering used to
        dominate the whole batch run when done link-by-link in Python.
        """
        kernel = self.kernel
        phi = kernel.phi_id
        ids = row.tolist()
        nodes = self.nodes
        next_hop: dict = {}
        for node_idx, oid in self.origin_candidates(dest):
            if ids[node_idx] == oid:
                next_hop[nodes[node_idx]] = dest
        dest_idx = self.node_index[dest]
        src, dst, lab = self.edge_src, self.edge_dst, self.edge_lab
        witness = ((src != dest_idx) & (dst != dest_idx)
                   & (row[dst] != phi)
                   & (kernel.trans[lab, row[src]] == row[dst]))
        src_nodes, dst_nodes = self._edge_src_nodes, self._edge_dst_nodes
        src_idx = self._edge_src_list
        best: dict = {}
        for i in _np.nonzero(witness)[0].tolist():
            node = dst_nodes[i]
            if node in next_hop:  # origination already explains it
                continue
            candidate = (ids[src_idx[i]], src_nodes[i])
            if node not in best or candidate < best[node]:
                best[node] = candidate
        for node, (_nid, neighbor) in best.items():
            next_hop[node] = neighbor
        for node_idx, node in enumerate(nodes):
            if node != dest and node not in next_hop \
                    and ids[node_idx] != phi:
                # Unreachable with a verified kernel.
                raise RuntimeError(
                    f"no witness next hop for {node}->{dest} at rank "
                    f"{ids[node_idx]}")
        return next_hop

    def _path(self, node: str, next_hop: dict, paths: dict) -> tuple:
        """Path via ``next_hop``, memoizing shared suffixes in ``paths``."""
        chain = []
        cursor = node
        while cursor not in paths:
            chain.append(cursor)
            cursor = next_hop[cursor]
            if len(chain) > len(self.nodes):
                raise RuntimeError(f"next-hop cycle: {chain}")
        suffix = paths[cursor]
        for hop in reversed(chain):
            suffix = (hop,) + suffix
            paths[hop] = suffix
        return paths[node]


class VectorizedBatchSession(BatchExecutionSession):
    """All scenarios of one batch relaxed simultaneously.

    The session owns the scenarios it was prepared with (their networks
    are mutated by the event mask), mirroring the scalar contract.
    Scenarios may mix algebras/families: problems are grouped per kernel
    and each group is one flat struct-of-arrays relaxation.
    """

    def __init__(self, scenarios: Iterable["Scenario"]):
        if _np is None:
            raise RuntimeError(
                "the batch backend requires numpy (not installed)")
        self.scenarios = list(scenarios)
        self._event_overrides: dict[int, list] = {}

    def override_events(self, index: int, events: list) -> None:
        """Replace ``scenarios[index]``'s schedule (scalar-adapter hook)."""
        self._event_overrides[index] = list(events)

    def run(self, *, partial: bool = False
            ) -> "list[ExecutionOutcome | None]":
        """Relax every scenario; one outcome per input, index-aligned.

        With ``partial=True`` a kernel group that declines at run time
        (monotone-mode :class:`BatchDeclined`) yields ``None`` for its
        scenarios instead of failing the whole batch — the oracle's
        chunk precompute uses this so one hole-touching scenario cannot
        take the rest of the chunk off the fast path.
        """
        problems = []
        for index, scenario in enumerate(self.scenarios):
            keys, origin_labels, edges = _scan_topology(scenario)
            kernel = _kernel_for(scenario.algebra, keys, origin_labels)
            if kernel is None:
                raise ValueError(
                    f"scenario {getattr(scenario.spec, 'scenario_id', '?')} "
                    f"is not batchable (algebra {scenario.algebra.name!r}); "
                    f"callers must filter with BatchBackend.supports()")
            events = self._event_overrides.get(index, scenario.events)
            until = getattr(scenario.spec, "until", None)
            _apply_events(scenario.network, events, until)
            if events:
                edges = _patch_edges(scenario, edges, events)
            hijacks = [(e.a, e.b, e.label) for e in events
                       if e.kind == "hijack" and e.label is not None
                       and (until is None or e.time <= until)]
            problems.append(_Problem(scenario, kernel, edges, hijacks))
        groups: dict[int, list[_Problem]] = {}
        for problem in problems:
            groups.setdefault(id(problem.kernel), []).append(problem)
        declined: set[int] = set()
        for gid, group in groups.items():
            try:
                _relax_group(group)
            except BatchDeclined:
                _KERNEL_STATS["runtime_declines"] += 1
                if not partial:
                    raise
                declined.add(gid)
        return [None if id(problem.kernel) in declined else problem.outcome()
                for problem in problems]


def _relax_group(group: list["_Problem"]) -> None:
    """Relax one kernel's scenarios over flat struct-of-arrays state.

    Isotone kernels run accumulating ``np.minimum.at`` rounds: state
    only ever improves, holes rank above φ and so can never enter the
    state, and the fixpoint is exactly the scalar engines' stable state.

    Monotone-only kernels run the synchronous Jacobi iteration — every
    node simultaneously re-selects the best of its neighbors' *current*
    routes, a fair activation schedule of the protocol itself, so the
    settled state is a stable state and (strict monotonicity +
    tie-respect) *the* stable state up to preference-equality.  The
    iteration is only faithful while every transient stays inside the
    tabulated closure: reading a hole entry, or failing to settle within
    the round budget, raises :class:`BatchDeclined`.
    """
    kernel = group[0].kernel
    phi = kernel.phi_id
    hole = kernel.hole_id
    src_parts, dst_parts, lab_parts = [], [], []
    orig_pos, orig_val = [], []
    blocks = []  # (problem, dest index, flat offset)
    offset = 0
    for problem in group:
        width = len(problem.nodes)
        for di, dest in enumerate(problem.dests):
            blocks.append((problem, di, offset))
            dest_idx = problem.node_index[dest]
            # The destination neither originates from others nor transits
            # its own routes: drop every edge touching it in this copy.
            keep = (problem.edge_src != dest_idx) \
                & (problem.edge_dst != dest_idx)
            src_parts.append(problem.edge_src[keep] + offset)
            dst_parts.append(problem.edge_dst[keep] + offset)
            lab_parts.append(problem.edge_lab[keep])
            for node_idx, oid in problem.origin_candidates(dest):
                orig_pos.append(offset + node_idx)
                orig_val.append(oid)
            offset += width
    seeds = _np.full(offset, phi, dtype=_np.int32)
    if orig_pos:
        _np.minimum.at(seeds, _np.asarray(orig_pos, dtype=_np.int64),
                       _np.asarray(orig_val, dtype=_np.int32))
    state = seeds.copy()
    if src_parts:
        src = _np.concatenate(src_parts)
        dst = _np.concatenate(dst_parts)
        lab = _np.concatenate(lab_parts)
        trans = kernel.trans
        if kernel.mode == "isotone":
            # Ranks only ever improve, and each ⊕ strictly increases the
            # rank, so the accumulating iteration reaches the unique
            # fixpoint in at most |Σ| rounds; the +2 cap is a pure safety
            # net.  Hole entries rank above φ, so minimum.at silently
            # discards them — exactly the masked min-relaxation the gate
            # licensed.
            for _round in range(phi + 2):
                before = state.copy()
                _np.minimum.at(state, dst, trans[lab, state[src]])
                if _np.array_equal(before, state):
                    break
            else:  # pragma: no cover - unreachable with a verified kernel
                raise RuntimeError(
                    "batch relaxation failed to reach fixpoint")
        else:
            # Jacobi: recompute every node's selection from scratch each
            # round (no accumulation — with a non-isotone table, keeping
            # a stale better-ranked offer whose advertiser has since
            # re-routed computes a state no protocol run can reach).
            rounds = _MONOTONE_ROUND_SLACK * (phi + 2) + MAX_NODES
            for _round in range(rounds):
                vals = trans[lab, state[src]]
                if bool((vals == hole).any()):
                    raise BatchDeclined(
                        "transient value crossed the closure depth "
                        "horizon; falling back to scalar engines")
                fresh = seeds.copy()
                _np.minimum.at(fresh, dst, vals)
                if _np.array_equal(fresh, state):
                    break
                state = fresh
            else:
                raise BatchDeclined(
                    "Jacobi iteration did not settle within the round "
                    "budget; falling back to scalar engines")
    for problem, di, off in blocks:
        if problem.state is None:
            problem.state = _np.empty((len(problem.dests),
                                       len(problem.nodes)),
                                      dtype=_np.int32)
        problem.state[di] = state[off:off + len(problem.nodes)]


class BatchSession(ExecutionSession):
    """Scalar adapter: one scenario through the vectorized kernel.

    Keeps the batch backend usable through the ordinary
    ``prepare / schedule_events / run`` lifecycle (conformance suite,
    single-scenario oracle fallback).  There is no simulator: the event
    schedule arrives wholesale via :meth:`schedule` and is folded into
    the final topology before one batch-of-one relaxation.
    """

    def __init__(self, scenario: "Scenario", *, seed: int = 0,
                 log_routes: bool = False):
        if log_routes:
            raise ValueError(
                "the batch backend computes fixpoints, not advertisement "
                "logs; prepare a scalar backend for route logging")
        self.scenario = scenario
        self.algebra = scenario.algebra
        self.destinations = list(scenario.destinations)
        self.route_log: list = []
        self._events: list | None = None
        self._table: tuple[dict, dict] | None = None

    @property
    def network(self):
        return self.scenario.network

    def schedule(self, events: list) -> None:
        """Receive the pre-run schedule (via ``schedule_events``)."""
        self._events = list(events)

    def apply_event(self, event: "ResolvedEvent") -> None:
        """Immediate application (the final topology is all that matters)."""
        _apply_events(self.scenario.network, [event], None)

    def run(self, until: float | None = None,
            max_events: int | None = None) -> ExecutionOutcome:
        inner = VectorizedBatchSession([self.scenario])
        if self._events is not None:
            inner.override_events(0, self._events)
        outcome = inner.run()[0]
        self._table = (outcome.routes, outcome.sigs)
        return outcome

    def route_table(self) -> tuple[dict, dict]:
        if self._table is None:
            raise RuntimeError("route_table() before run()")
        return self._table


class BatchBackend(ExecutionBackend):
    """The vectorized fixpoint backend (``batch``)."""

    name = "batch"

    def supports(self, scenario: "Scenario") -> bool:
        """Batchable = the fixpoint shortcut provably equals the engines.

        A scenario is batchable when every one of these holds:

        * numpy is importable;
        * single-path selection (``top_k == 1``) without route logging —
          the kernel has no advertisement stream to log;
        * the analysis subject is known up front (iBGP-style post-run
          extraction needs a scalar primary backend);
        * the algebra is rank-tabulable: not path-valued (SPP gadgets),
          not the domain-path HLP cost algebra, and its reachable
          signature closure over the scenario's directed transfer
          vocabulary is within budget and **verified strictly monotonic**
          (non-strict draws like plain Gao-Rexford fall back to the
          scalar engines);
        * the rank tables pass the hole-aware gate: isotone in
          preference space (exact min-relaxation) or at least
          tie-respecting (Jacobi iteration — which may still decline
          *at run time* with :class:`BatchDeclined` if a transient
          crosses the closure depth horizon);
        * the topology is within the node budget.
        """
        if _np is None:
            return False
        if getattr(scenario, "top_k", 1) != 1:
            return False
        if getattr(scenario, "log_routes", False):
            return False
        if getattr(scenario, "analysis_subject", "missing") is None:
            return False
        algebra = scenario.algebra
        if isinstance(algebra, (SPPAlgebra, HLPCostAlgebra)):
            return False
        if scenario.network.node_count() > MAX_NODES:
            return False
        keys, origin_labels = _transfer_vocab(scenario)
        if None in origin_labels:
            return False
        return _kernel_for(algebra, keys, origin_labels) is not None

    def prepare(self, scenario: "Scenario", *, seed: int = 0,
                log_routes: bool = False) -> BatchSession:
        return BatchSession(scenario, seed=seed, log_routes=log_routes)

    def prepare_batch(self, scenarios: Iterable["Scenario"]
                      ) -> VectorizedBatchSession:
        return VectorizedBatchSession(scenarios)
