"""Vectorized batch execution backend: thousands of scenarios per call.

The scalar engines (GPV, NDlog) simulate every advertisement of every
scenario through a discrete-event loop — faithful, and the differential
ground truth, but the campaign hot path.  This backend exploits the
theorem the whole toolkit is built on: for a **strictly monotonic**
algebra the protocol's converged best-route table *is* the unique
Bellman-Ford fixpoint of the final topology (paper Thm. 4.1 plus
uniqueness of the stable state), independent of message timing, event
interleaving, or advertisement batching.  So instead of simulating, it:

1. **tabulates the algebra ordinally** — the reachable signature closure
   (origin signatures extended by every observed label) is rank-sorted
   into integer ids where *smaller id == more preferred*, with φ as the
   largest absorbing *routable* id and a distinct **hole** sentinel
   (``hole_id == phi_id + 1``) for extensions whose true value lies past
   the closure depth horizon; ⊕ becomes one ``int32`` lookup table
   ``trans[label, sig] -> sig`` (the canonicalizer's ordinal-rank
   rendering, promoted to an execution kernel).  Strict monotonicity is
   *verified* for every tabulated entry — in-table extensions must carry
   a strictly larger id, hole extensions are preference-checked against
   their source — and any violation marks the algebra unsupported;
2. **applies each scenario's event mask up front** — link failures
   remove links, perturbations relabel them; history-independence of
   the unique stable state makes the final topology sufficient;
3. **relaxes all scenarios at once** in struct-of-arrays form: one flat
   ``int32`` state vector over every (scenario, destination, node)
   triple, one flat directed-edge list, and synchronous numpy rounds
   until fixpoint.  *Isotone* kernels (rank tables monotone in
   preference space) use accumulating ``np.minimum.at`` rounds — holes
   rank worse than φ, so a depth-truncated value can never win the min
   and the fixpoint provably equals the scalar engines' stable state.
   *Monotone-only* kernels (strictly monotonic but genuinely
   non-isotone, e.g. the Gao-Rexford × hopcount products) run an honest
   synchronous Jacobi iteration — one fair activation schedule of the
   protocol the safety theorem proves convergent — and **decline at run
   time** (:class:`BatchDeclined`) the moment a transient value would
   read a hole entry, or if the iteration fails to settle.

Scenarios whose semantics the fixpoint shortcut cannot reproduce are
declared unsupported (see :meth:`BatchBackend.supports`) and stay on the
scalar engines; the scalar↔batched differential in the campaign oracle
and the fixed-seed equality gate in ``benchmarks/`` keep the fast path
honest.

Tabulation cost is amortized three ways: a per-algebra-instance memo, a
process-wide cache under canonical algebra keys, and an optional
**persistent kernel store** (:mod:`repro.exec.kernel_store`, enabled via
:func:`configure_kernel_store` or ``$REPRO_BATCH_KERNEL_CACHE``) shared
by fleet workers and repeat campaigns.  The store is the documented seam
for future GPU/mypyc/Rust kernel drop-ins: anything that can produce the
``trans`` table for a canonical key can serve it from there.

numpy is optional: without it the backend simply supports nothing, so
campaigns degrade to the scalar engines instead of failing to import.
"""

from __future__ import annotations

import gc
import os
import pickle
import time
from typing import TYPE_CHECKING, Hashable, Iterable

try:  # gated: the toolkit must import (and run scalar) without numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less boxes
    _np = None

from ..algebra.base import PHI, Pref, RoutingAlgebra, rank_sort
from ..algebra.extended import ExtendedAlgebra
from ..algebra.hlp import HLPCostAlgebra
from ..algebra.spp import SPPAlgebra
from ..net.simulator import StopReason
from ..obs import metrics as _obs_metrics
from .base import (
    BatchExecutionSession,
    ExecutionBackend,
    ExecutionOutcome,
    ExecutionSession,
)

if TYPE_CHECKING:
    from ..campaigns.scenarios import ResolvedEvent, Scenario

#: Structural limits of the kernel: the ordinal table must stay small
#: enough that tabulation is cheaper than the simulations it replaces.
MAX_NODES = 64
MAX_SIGNATURES = 4096
MAX_CLOSURE_DEPTH = 64

#: Bounded-hole closure deepening: on a monotone-mode hole-touch the
#: engine extends the closure horizon along just the offending kernel
#: rows by ``DEEPEN_STEP`` and restarts the group, up to the hard depth
#: cap / attempt budget, instead of bailing the whole group to scalar.
DEEPEN_STEP = 64
MAX_DEEPEN_DEPTH = 256
_MAX_DEEPEN_ATTEMPTS = 3

#: Dense v1 relaxation escape hatch (differential tests / bisection).
DENSE_RELAX_ENV = "REPRO_BATCH_DENSE"

#: algebra canonical key + observed label set -> kernel (None = unsupported).
_KERNEL_CACHE: dict[tuple, "_Kernel | None"] = {}
_KERNEL_CACHE_MAX = 256

#: Environment variable naming the persistent kernel store (sqlite).
KERNEL_CACHE_ENV = "REPRO_BATCH_KERNEL_CACHE"

#: Round budget multiplier for the monotone-mode Jacobi iteration.
_MONOTONE_ROUND_SLACK = 4

#: Kernel amortization counters, now series of the process metrics
#: registry (``repro_batch_kernel_events_total{event=...}`` plus the
#: tabulation wall-clock total).  The dict views below keep their
#: historical shapes; the registry is the single source of truth.
_KERNEL_EVENTS = {
    name: _obs_metrics.counter("repro_batch_kernel_events_total",
                               event=name)
    for name in (
        "memo_hits",        # per-algebra-instance memo
        "cache_hits",       # process-wide canonical-key cache
        "cache_misses",
        "store_hits",       # persistent kernel store
        "store_misses",
        "tabulations",      # closures actually computed this process
        "runtime_declines",  # monotone-mode BatchDeclined bails
    )
}
_TABULATION_SECONDS = _obs_metrics.counter(
    "repro_batch_tabulation_seconds_total")

#: Per-phase telemetry of the vectorized session (wall time by phase,
#: relaxation rounds-per-fixpoint histogram, frontier occupancy, and the
#: deepening / hazard counters).  Snapshot via :func:`batch_phase_stats`.
_PHASE_SECONDS = {
    phase: _obs_metrics.counter("repro_batch_phase_seconds_total",
                                phase=phase)
    for phase in (
        "scan",      # topology scan + problem compilation
        "tabulate",  # kernel lookup/tabulation (all cache tiers)
        "relax",     # the relaxation proper
        "render",    # outcome (route table) rendering
    )
}
_PHASE_EVENTS = {
    name: _obs_metrics.counter("repro_batch_relax_events_total",
                               event=name)
    for name in (
        "frontier_cells",   # Σ active cells over all frontier rounds
        "frontier_rounds",  # frontier rounds executed
        "state_cells",      # Σ state-vector length over all groups
        "deepenings",       # bounded-hole closure deepenings performed
        "hazard_declines",  # Jacobi tie-hazard bails (subset of declines)
    )
}

#: rounds-to-fixpoint histogram family; labeled per observed round count,
#: so handles are re-acquired in :func:`_note_rounds` and the reset drops
#: the dynamically-created series.
_ROUNDS_FAMILY = "repro_batch_relax_rounds_total"


def batch_phase_stats() -> dict:
    """Snapshot of per-phase timing/occupancy counters (a registry view)."""
    rounds = {
        int(dict(labels)["rounds"]): int(metric.value)
        for labels, metric in
        _obs_metrics.get_registry().family(_ROUNDS_FAMILY).items()
    }
    out = {f"{phase}_s": handle.value
           for phase, handle in _PHASE_SECONDS.items()}
    out["rounds"] = rounds
    out.update((name, int(handle.value))
               for name, handle in _PHASE_EVENTS.items())
    return out


def reset_batch_phase_stats() -> None:
    for handle in _PHASE_SECONDS.values():
        handle.reset()
    for handle in _PHASE_EVENTS.values():
        handle.reset()
    _obs_metrics.get_registry().reset(_ROUNDS_FAMILY, drop=True)


def _note_rounds(rounds: int) -> None:
    _obs_metrics.counter(_ROUNDS_FAMILY, rounds=rounds).inc()

#: Persistent store state (fork-guarded; see configure_kernel_store).
_STORE = None
_STORE_PATH: str | None = None
_STORE_PID: int | None = None
_STORE_RESOLVED = False


class BatchDeclined(RuntimeError):
    """A supported-looking scenario must fall back to scalar at run time.

    Raised only by *monotone-mode* kernels: their Jacobi iteration is
    sound exactly while every transient value stays inside the tabulated
    closure, so reading a beyond-horizon hole — or failing to settle
    within the round budget — aborts the batch answer rather than risk a
    wrong one.  Callers (oracle, scalar adapter) treat it as "scenario
    not batchable after all", never as an execution error.
    """


def kernel_cache_stats() -> dict:
    """Snapshot of kernel amortization counters (a registry view)."""
    out = {name: int(handle.value)
           for name, handle in _KERNEL_EVENTS.items()}
    out["tabulation_s"] = _TABULATION_SECONDS.value
    return out


def reset_kernel_cache_stats() -> None:
    for handle in _KERNEL_EVENTS.values():
        handle.reset()
    _TABULATION_SECONDS.reset()


def numpy_available() -> bool:
    """Whether the vectorized backend can run at all in this process."""
    return _np is not None


def _transfer(algebra: RoutingAlgebra, key: Hashable, sig):
    """One directed link traversal, exactly as the scalar engines do it.

    For :class:`ExtendedAlgebra` the key is the directed
    ``(export label, import label)`` pair — the sender filters with ⊕E
    over *its* side's label and the receiver filters (⊕I) and extends
    (⊕P) over the reverse direction's label, mirroring the GPV/NDlog
    send/receive split.  Plain algebras have a single combined ⊕ and the
    key is the receiver-side label alone.
    """
    if sig is PHI:
        return PHI
    if isinstance(algebra, ExtendedAlgebra):
        out_label, in_label = key
        if not algebra.export_allows(out_label, sig):
            return PHI
        if not algebra.import_allows(in_label, sig):
            return PHI
        return algebra.concat(in_label, sig)
    return algebra.oplus(key, sig)


def _origin_sig(algebra: RoutingAlgebra, label: Hashable):
    """One-hop origination, with the engines' undefined-label semantics
    (a label the algebra cannot originate over simply yields no route)."""
    try:
        return algebra.origin_signature(label)
    except (KeyError, NotImplementedError):
        return PHI


class _Kernel:
    """One algebra tabulated over one transfer vocabulary, as integer ranks.

    ``sigs[i]`` is the representative signature of ordinal id ``i`` (rank
    order, ties broken by ``repr`` so ids are deterministic); ``phi_id ==
    len(sigs)`` is φ and ``hole_id == phi_id + 1`` the beyond-horizon
    sentinel.  ``trans[key_id, sig_id]`` is the id of the signature after
    one directed link traversal (genuine filters map to ``phi_id``,
    depth-truncated extensions to ``hole_id``), and ``origin_id[label]``
    the id of the one-hop origination signature over an import label.
    Strict monotonicity makes every in-table ``trans`` entry strictly
    larger than its source id — the property both the fixpoint argument
    and the next-hop reconstruction lean on.

    ``pref_class[i]`` is the *preference class* of id ``i``: adjacent
    rank-sorted signatures that compare EQUAL share a class, φ is the
    strictly-worst real class, and the hole sentinel sits above even
    that (so it can never win a min).  ``mode`` records which relaxation
    the gate licensed: ``"isotone"`` (accumulating min, exact) or
    ``"monotone"`` (synchronous Jacobi with run-time hole bail-out).

    ``hazard`` marks monotone kernels admitted past the tie-respect
    gate: their Jacobi rounds additionally verify (via ``tie_class``,
    the bisimulation refinement of ``pref_class`` under ``trans``) that
    no preference tie between behaviorally distinct signatures ever
    competes for one node — the condition under which the batch answer
    could diverge from the scalar engines' arrival-order tie-break.
    ``depth`` is the closure horizon the tables were tabulated to
    (grows under bounded-hole deepening); ``algebra`` / ``cache_key``
    let the deepening rebuild and persist the tables in place.
    """

    __slots__ = ("sigs", "sig_id", "phi_id", "hole_id", "key_id", "trans",
                 "origin_id", "pref_class", "mode", "hole_count",
                 "tie_class", "hazard", "depth", "algebra", "cache_key")

    def __init__(self, sigs: list, key_id: dict, trans, origin_id: dict,
                 pref_class, mode: str, hole_count: int, *,
                 tie_class=None, hazard: bool = False,
                 depth: int = MAX_CLOSURE_DEPTH):
        self.sigs = sigs
        self.sig_id = {sig: i for i, sig in enumerate(sigs)}
        self.phi_id = len(sigs)
        self.hole_id = len(sigs) + 1
        self.key_id = key_id
        self.trans = trans
        self.origin_id = origin_id
        self.pref_class = pref_class
        self.mode = mode
        self.hole_count = hole_count
        self.tie_class = tie_class
        self.hazard = hazard
        self.depth = depth
        self.algebra = None    # attached by _kernel_for (not serialized)
        self.cache_key = None  # repr of the store key (not serialized)


def _pref_classes(algebra: RoutingAlgebra, sigs: list):
    """id -> preference class over ``sigs`` + φ + hole (ascending = worse)."""
    classes = _np.empty(len(sigs) + 2, dtype=_np.int32)
    cls = 0
    for i, sig in enumerate(sigs):
        if i and algebra.preference(sigs[i - 1], sig) is not Pref.EQUAL:
            cls += 1
        classes[i] = cls
    classes[len(sigs)] = cls + 1      # φ: strictly worse than every route
    classes[len(sigs) + 1] = cls + 2  # hole: worse still, never compared
    return classes


def _tie_classes(trans, pref_class):
    """Bisimulation refinement of ``pref_class`` under ``trans``.

    Two ids share a tie class iff they compare preference-EQUAL *and*
    every one-key extension lands them in preference-equal (recursively:
    tie-equal) ids — i.e. the coarsest refinement of the preference
    partition that ``trans`` cannot distinguish.  A preference tie
    between distinct tie classes is exactly the situation where the
    scalar engines' arrival-order tie-break could pick a signature whose
    *future* extensions differ from the batch fixpoint's pick; the
    hazard-mode Jacobi checks for it at run time.  φ and the hole keep
    their own classes throughout.  Ids are deterministic (first-seen
    order over the rank-sorted ids).
    """
    cls = pref_class.astype(_np.int64)
    distinct = int(_np.unique(cls).size)
    n_keys = trans.shape[0]
    while True:
        behavior = _np.empty((cls.size, n_keys + 1), dtype=_np.int64)
        behavior[:, 0] = cls
        behavior[:, 1:] = cls[trans].T
        _, refined = _np.unique(behavior, axis=0, return_inverse=True)
        refined_distinct = int(refined.max()) + 1
        if refined_distinct == distinct:
            return cls.astype(_np.int32)
        cls = refined.astype(_np.int64)
        distinct = refined_distinct


def _classify_kernel(trans, pref_class, phi_id: int, hole_id: int
                     ) -> tuple[str, bool, "object | None"]:
    """Which relaxation the rank tables license: the hole-aware gate.

    Returns ``(mode, hazard, tie_class)``:

    ``("isotone", False, None)`` — every row, restricted to its non-hole
    entries, is non-decreasing in *preference class* and
    preference-constant within each input tie class (i.e. the true
    algebra is isotone on the whole tabulated closure, ties included,
    with genuine φ as the worst class).  Then accumulating
    min-relaxation is exact: every stable or simple-path value uses ≤
    ``MAX_NODES - 1`` transfers and so lives inside the closure, holes
    only ever appear on loopy transients and rank below φ, and the
    classical de-looping argument needs isotonicity only at in-table
    points.

    ``("monotone", False, None)`` — not isotone, but every row *respects
    ties*: within each input tie class the non-hole outputs are
    preference-EQUAL and holes don't mix with non-holes.  Strict
    monotonicity + tie-respect make the stable state unique up to
    preference-equality, which licenses the Jacobi iteration
    unconditionally — provided no transient reads a hole, enforced at
    run time.

    ``("monotone", True, tie_class)`` — strictly monotonic but *not*
    statically tie-respecting (deployed filter-mode secure wrappers land
    here: the deployment bit gives two importer columns whose outputs
    diverge within one preference class).  The Jacobi iteration is still
    a fair activation schedule of the protocol; divergence from the
    scalar engines requires a preference tie between behaviorally
    distinct signatures to actually compete at some node, which the
    hazard-mode rounds detect via ``tie_class`` and decline on.  This
    admission is guarded empirically (hazard check + the campaign
    differential), not by a static proof.
    """
    n = phi_id  # number of real signature ids
    in_cls = pref_class[:n]
    isotone = True
    for row in trans[:, :n]:
        mask = row != hole_id
        oc = pref_class[row[mask]]
        ic = in_cls[mask]
        if oc.size > 1:
            # Non-hole entries stay contiguous per tie class (ids are
            # rank-sorted), so adjacent masked pairs cover every in-table
            # comparison the exactness proof performs — holes constrain
            # nothing, they only ever appear on loopy transients.
            d_oc = _np.diff(oc)
            if _np.any(d_oc < 0) \
                    or _np.any((_np.diff(ic) == 0) & (d_oc != 0)):
                isotone = False
                break
    if isotone:
        return "isotone", False, None
    # Static tie-respect: per row, per input tie class — no
    # hole/non-hole mix, and all non-hole outputs in one preference
    # class.  Kernels passing it keep the unguarded v1 Jacobi.
    # Vectorized as one segmented min/max per row: the hole sentinel has
    # its own preference class, so "segment collapses to one class"
    # simultaneously rejects multi-class outputs and hole/non-hole mixes
    # while accepting pure all-hole segments — exactly the old
    # per-segment scan, without its thousands of tiny ``np.unique``s.
    seg_starts = _np.concatenate(
        ([0], _np.flatnonzero(_np.diff(in_cls)) + 1))
    out_cls = pref_class[trans[:, :n]]
    lo = _np.minimum.reduceat(out_cls, seg_starts, axis=1)
    hi = _np.maximum.reduceat(out_cls, seg_starts, axis=1)
    if bool((lo == hi).all()):
        return "monotone", False, None
    return "monotone", True, _tie_classes(trans, pref_class)


class _Unbatchable(Exception):
    """Internal: the closure/tables violate a batchability invariant."""


def _close_signatures(algebra: RoutingAlgebra, ordered_keys: list,
                      seen: set, frontier: list, depth_budget: int,
                      ext: dict) -> None:
    """BFS the reachable signature closure up to ``depth_budget`` hops.

    ``seen``/``frontier`` are mutated in place (``frontier`` is consumed)
    and every computed ``(key, sig) -> extended`` transfer is memoized in
    ``ext`` — the table fill reuses them, halving the algebra calls.
    Each non-φ extension is strictness-verified on the spot; a violation
    (or a closure past the size budget) raises :class:`_Unbatchable`.
    """
    depth = 0
    while frontier:
        depth += 1
        if depth > depth_budget:
            break  # deeper values are holes: tabulated past the horizon
        fresh = []
        for sig in frontier:
            for key in ordered_keys:
                extended = _transfer(algebra, key, sig)
                ext[(key, sig)] = extended
                if extended is PHI:
                    continue
                if algebra.preference(sig, extended) is not Pref.BETTER:
                    raise _Unbatchable("not strictly monotonic")
                if extended not in seen:
                    seen.add(extended)
                    fresh.append(extended)
                    if len(seen) > MAX_SIGNATURES:
                        raise _Unbatchable("closure over size budget")
        frontier = fresh


def _finish_kernel(algebra: RoutingAlgebra, ordered_keys: list,
                   origin: dict, seen: set, ext: dict,
                   depth: int) -> _Kernel:
    """Rank-sort a closed ``seen`` set and fill/classify the tables."""
    sigs = rank_sort(algebra, sorted(seen, key=repr))
    sig_id = {sig: i for i, sig in enumerate(sigs)}
    phi_id = len(sigs)
    hole_id = phi_id + 1
    key_id = {key: i for i, key in enumerate(ordered_keys)}
    # trans columns: real ids, then φ (absorbing), then hole (absorbing).
    trans = _np.full((max(len(ordered_keys), 1), hole_id + 1), phi_id,
                     dtype=_np.int32)
    trans[:, hole_id] = hole_id
    hole_count = 0
    _missing = object()
    ext_get = ext.get
    id_get = sig_id.get
    for key, ki in key_id.items():
        for sig, si in sig_id.items():
            extended = ext_get((key, sig), _missing)
            if extended is _missing:
                # Frontier-at-horizon signatures never extended in the
                # BFS; compute (and strictness-check) here.
                extended = _transfer(algebra, key, sig)
                if extended is not PHI \
                        and algebra.preference(sig, extended) \
                        is not Pref.BETTER:
                    raise _Unbatchable("not strictly monotonic")
            if extended is PHI:
                continue
            ti = id_get(extended)
            if ti is None:
                # Beyond the depth horizon: an explicit hole (strictness
                # was verified when the extension was computed).
                trans[ki, si] = hole_id
                hole_count += 1
                continue
            if ti <= si:  # a rank tie would break the id ordering
                raise _Unbatchable("rank tie")
            trans[ki, si] = ti
    pref_class = _pref_classes(algebra, sigs)
    # The hole-aware gate: which relaxation the tables license.  Strict
    # inflation alone does not make min-relaxation exact (BGP-like
    # algebras are famously non-isotone); isotone tables get the
    # accumulating min, tie-respecting tables the unguarded Jacobi, and
    # everything else the hazard-guarded Jacobi.
    mode, hazard, tie_class = _classify_kernel(
        trans, pref_class, phi_id, hole_id)
    origin_id = {
        label: (phi_id if sig is PHI else sig_id[sig])
        for label, sig in origin.items()
    }
    return _Kernel(sigs, key_id, trans, origin_id, pref_class, mode,
                   hole_count, tie_class=tie_class, hazard=hazard,
                   depth=depth)


def _build_kernel(algebra: RoutingAlgebra, keys: Iterable[Hashable],
                  origin_labels: Iterable[Hashable],
                  depth: int = MAX_CLOSURE_DEPTH) -> "_Kernel | None":
    """Tabulate ``algebra`` over a transfer vocabulary; None if unbatchable.

    Unsupported means: the reachable closure does not stay within the
    size budget, or some tabulated extension is not *strictly* worse
    than its source signature (without strict monotonicity the fixpoint
    need not equal the protocol's outcome, or even be unique).

    The closure is *depth*-truncated, not required to be closed:
    additive metrics (shortest-path, hop counts) have infinite signature
    spaces, but every stable-state and simple-path value on a
    ``MAX_NODES``-bounded topology uses at most ``MAX_NODES - 1``
    transfers and so lies within the depth-``depth`` closure.
    Extensions past the horizon are tabulated as the explicit **hole**
    sentinel (strictness still preference-verified), so the relaxation
    can reason about them instead of conflating them with φ — and
    bounded-hole deepening (:func:`_deepen_kernel`) can later push the
    horizon out along just the rows a Jacobi transient actually touched.
    """
    ordered_keys = sorted(set(keys), key=repr)
    try:
        origin = {label: _origin_sig(algebra, label)
                  for label in sorted(set(origin_labels), key=repr)}
        seen = {sig for sig in origin.values() if sig is not PHI}
        ext: dict = {}
        _close_signatures(algebra, ordered_keys, seen, list(seen),
                          depth, ext)
        return _finish_kernel(algebra, ordered_keys, origin, seen, ext,
                              depth)
    except Exception:  # noqa: BLE001 - exotic algebra => scalar engines
        return None


def _deepen_kernel(kernel: _Kernel, offending: set) -> bool:
    """Bounded-hole closure deepening: push the horizon past ``offending``.

    ``offending`` is the set of ``(key_id, sig_id)`` cells whose hole
    entries a Jacobi transient actually read.  The closure is re-seeded
    from just those cells' extensions and grown another
    ``DEEPEN_STEP`` hops (every key — a deepened signature's own
    extensions must be tabulable too), the tables are rebuilt, and the
    kernel is mutated **in place** so every cache tier holding this
    object serves the deepened tables.  Returns False when the depth cap
    is reached, the rebuild fails, or the kernel lacks its algebra ref
    (then the caller declines to scalar as before).
    """
    algebra = kernel.algebra
    if algebra is None or kernel.depth >= MAX_DEEPEN_DEPTH:
        return False
    new_depth = min(kernel.depth + DEEPEN_STEP, MAX_DEEPEN_DEPTH)
    ordered_keys = sorted(kernel.key_id, key=kernel.key_id.get)
    try:
        origin = {label: (PHI if oid == kernel.phi_id
                          else kernel.sigs[oid])
                  for label, oid in kernel.origin_id.items()}
        seen = set(kernel.sigs)
        ext: dict = {}
        # Seed the deepening frontier with the offending cells'
        # beyond-horizon extensions only — the bounded part of the bound.
        frontier = []
        for ki, si in offending:
            key = ordered_keys[ki]
            sig = kernel.sigs[si]
            extended = _transfer(algebra, key, sig)
            ext[(key, sig)] = extended
            if extended is PHI:
                continue
            if algebra.preference(sig, extended) is not Pref.BETTER:
                return False
            if extended not in seen:
                seen.add(extended)
                frontier.append(extended)
        _close_signatures(algebra, ordered_keys, seen, frontier,
                          DEEPEN_STEP, ext)
        rebuilt = _finish_kernel(algebra, ordered_keys, origin, seen, ext,
                                 new_depth)
    except Exception:  # noqa: BLE001 - deepening is best-effort
        return False
    # In-place mutation: the per-instance memo, the process cache and
    # every _Problem in flight hold *this* object.
    for slot in ("sigs", "sig_id", "phi_id", "hole_id", "key_id", "trans",
                 "origin_id", "pref_class", "mode", "hole_count",
                 "tie_class", "hazard", "depth"):
        setattr(kernel, slot, getattr(rebuilt, slot))
    _PHASE_EVENTS["deepenings"].inc()
    # Write-through: later processes decode the deepened tables directly.
    store = _active_store()
    if store is not None and kernel.cache_key is not None:
        try:
            store.put_deeper(kernel.cache_key, _encode_kernel(kernel),
                             kernel.depth)
        except Exception:  # noqa: BLE001 - cache write, best-effort
            pass
    return True


def _timed_build(algebra: RoutingAlgebra, keys: Iterable[Hashable],
                 origin_labels: Iterable[Hashable]) -> "_Kernel | None":
    started = time.perf_counter()
    kernel = _build_kernel(algebra, keys, origin_labels)
    _KERNEL_EVENTS["tabulations"].inc()
    _TABULATION_SECONDS.inc(time.perf_counter() - started)
    return kernel


def configure_kernel_store(path: str | None = None) -> None:
    """Open (or switch) the persistent kernel store for this process.

    ``path=None`` falls back to ``$REPRO_BATCH_KERNEL_CACHE`` (no store
    when that is unset too).  Idempotent per ``(path, pid)``; forked
    workers transparently reopen their own connection.  A store that
    fails to open degrades to in-process caching only — the batch
    backend never hard-fails on cache trouble.
    """
    global _STORE, _STORE_PATH, _STORE_PID, _STORE_RESOLVED
    resolved = path if path is not None \
        else (os.environ.get(KERNEL_CACHE_ENV) or None)
    if _STORE_RESOLVED and resolved == _STORE_PATH \
            and _STORE_PID == os.getpid():
        return
    if _STORE is not None:
        try:
            _STORE.close()
        except Exception:  # noqa: BLE001
            pass
    _STORE = None
    _STORE_PATH = resolved
    _STORE_PID = os.getpid()
    _STORE_RESOLVED = True
    if resolved is not None and _np is not None:
        from .kernel_store import KernelStore
        try:
            _STORE = KernelStore(resolved)
        except Exception:  # noqa: BLE001 - unusable store => in-memory only
            _STORE = None


def _active_store():
    if not _STORE_RESOLVED or _STORE_PID != os.getpid():
        configure_kernel_store(_STORE_PATH if _STORE_RESOLVED else None)
    return _STORE


def _encode_kernel(kernel: "_Kernel | None") -> bytes | None:
    """Kernel -> store payload (None encodes a cached negative result)."""
    if kernel is None:
        return None
    ordered_keys = sorted(kernel.key_id, key=kernel.key_id.get)
    return pickle.dumps({
        "sigs": kernel.sigs,
        "keys": ordered_keys,
        "origin_id": kernel.origin_id,
        "trans": kernel.trans.tobytes(),
        "shape": kernel.trans.shape,
        "pref_class": kernel.pref_class.tobytes(),
        "mode": kernel.mode,
        "hole_count": kernel.hole_count,
        "tie_class": (None if kernel.tie_class is None
                      else kernel.tie_class.tobytes()),
        "hazard": kernel.hazard,
        "depth": kernel.depth,
    }, protocol=pickle.HIGHEST_PROTOCOL)


def _decode_kernel(payload: bytes | None) -> "_Kernel | None":
    if payload is None:
        return None
    body = pickle.loads(payload)
    trans = _np.frombuffer(body["trans"], dtype=_np.int32) \
        .reshape(body["shape"]).copy()
    pref_class = _np.frombuffer(body["pref_class"], dtype=_np.int32).copy()
    key_id = {key: i for i, key in enumerate(body["keys"])}
    # v1 payloads lack the v2 fields; their stored monotone kernels are
    # exactly the statically tie-respecting (hazard-free) ones.
    raw_tie = body.get("tie_class")
    tie_class = (None if raw_tie is None
                 else _np.frombuffer(raw_tie, dtype=_np.int32).copy())
    return _Kernel(body["sigs"], key_id, trans, body["origin_id"],
                   pref_class, body["mode"], body["hole_count"],
                   tie_class=tie_class,
                   hazard=body.get("hazard", False),
                   depth=body.get("depth", MAX_CLOSURE_DEPTH))


def _canonical_repr(algebra: RoutingAlgebra) -> str:
    """``repr(canonical_key(algebra))``, memoized on the instance.

    Canonicalizing a table algebra is a refinement search; ``supports()``,
    the batched ``run()`` and the oracle's kernel-keyed chunk grouping
    all want the same rendering of the same materialized instance, so it
    is paid once per instance, not once per question.
    """
    cached = getattr(algebra, "_batch_canonical_repr", None)
    if cached is not None:
        return cached
    from ..campaigns.canonical import canonical_key

    rendered = repr(canonical_key(algebra))
    try:
        algebra._batch_canonical_repr = rendered
    except AttributeError:  # __slots__ algebra: recompute per call
        pass
    return rendered


def _kernel_for(algebra: RoutingAlgebra, keys: Iterable[Hashable],
                origin_labels: Iterable[Hashable]) -> "_Kernel | None":
    """Cached tabulation, keyed isomorphism-invariantly.

    The canonical key makes relabeled copies of one algebra share a
    kernel across every scenario, seed and chunk in the process — the
    same dedup trick the verdict cache plays for the analyzer — and,
    when a persistent store is configured, across processes, fleet
    workers and repeat campaigns too.
    """
    vocab = (tuple(sorted(repr(k) for k in set(keys))),
             tuple(sorted(repr(l) for l in set(origin_labels))))
    # Instance-level memo first: ``supports()`` and the batched ``run()``
    # see the same materialized algebra object, so the canonical keying
    # is paid once per scenario, not once per call.
    memo = getattr(algebra, "_batch_kernel_memo", None)
    if memo is not None and vocab in memo:
        _KERNEL_EVENTS["memo_hits"].inc()
        return memo[vocab]
    try:
        key = (_canonical_repr(algebra),) + vocab
    except Exception:  # noqa: BLE001 - uncanonicalizable => uncacheable
        kernel = _timed_build(algebra, keys, origin_labels)
        if kernel is not None:
            kernel.algebra = algebra  # deepening works; no store key
        return kernel
    if key in _KERNEL_CACHE:
        _KERNEL_EVENTS["cache_hits"].inc()
    else:
        _KERNEL_EVENTS["cache_misses"].inc()
        if len(_KERNEL_CACHE) >= _KERNEL_CACHE_MAX:
            _KERNEL_CACHE.clear()
        kernel = _UNSET = object()
        store = _active_store()
        if store is not None:
            found, payload = store.get(repr(key))
            if found:
                try:
                    kernel = _decode_kernel(payload)
                    _KERNEL_EVENTS["store_hits"].inc()
                except Exception:  # noqa: BLE001 - stale/corrupt row
                    kernel = _UNSET
            if kernel is _UNSET:
                _KERNEL_EVENTS["store_misses"].inc()
        if kernel is _UNSET:
            kernel = _timed_build(algebra, keys, origin_labels)
            if store is not None:
                try:
                    store.put(repr(key), _encode_kernel(kernel),
                              depth=0 if kernel is None else kernel.depth)
                except Exception:  # noqa: BLE001 - cache write, best-effort
                    pass
        _KERNEL_CACHE[key] = kernel
    kernel = _KERNEL_CACHE[key]
    if kernel is not None:
        # Late attachment: deepening needs a live algebra to extend the
        # closure with, and the store key to write the result through.
        if kernel.algebra is None:
            kernel.algebra = algebra
        kernel.cache_key = repr(key)
    try:
        if memo is None:
            memo = algebra._batch_kernel_memo = {}
        memo[vocab] = kernel
    except AttributeError:  # __slots__ algebra: process cache still applies
        pass
    return kernel


def clear_kernel_cache() -> None:
    """Drop tabulated kernels (benches isolating tabulation cost)."""
    _KERNEL_CACHE.clear()


def kernel_key_of(scenario: "Scenario"):
    """The canonical kernel key a scenario's batch execution will use.

    ``(canonical algebra key, transfer vocabulary)`` — scenarios sharing
    it share one tabulation *and* one relaxation call, which is what the
    oracle's kernel-keyed chunk grouping sorts by.  ``None`` when the
    algebra cannot be canonicalized (still batchable, just uncacheable).
    """
    keys, origin_labels = _transfer_vocab(scenario)
    vocab = (tuple(sorted(repr(k) for k in set(keys))),
             tuple(sorted(repr(l) for l in set(origin_labels))))
    try:
        return (_canonical_repr(scenario.algebra),) + vocab
    except Exception:  # noqa: BLE001
        return None


def _transfer_key(algebra: RoutingAlgebra, out_label: Hashable,
                  in_label: Hashable) -> Hashable:
    """The vocabulary key of a directed ``u → v`` traversal, where the
    sender exports over ``label(u, v)`` and the receiver imports over
    ``label(v, u)``."""
    if isinstance(algebra, ExtendedAlgebra):
        return (out_label, in_label)
    return in_label


def _scan_topology(scenario: "Scenario") -> tuple[set, set, list]:
    """One pass over the starting topology: the transfer vocabulary the
    run can ever observe — every directed link traversal, plus the labels
    perturbation events may swap in (perturbations relabel both
    directions identically) — and the directed ``(u, v, key)`` edge list
    the relaxation compiles."""
    algebra = scenario.algebra
    paired = isinstance(algebra, ExtendedAlgebra)
    keys: set = set()
    origin_labels: set = set()
    edges: list = []
    add_key = keys.add
    add_origin = origin_labels.add
    add_edge = edges.append
    for link in scenario.network.links():
        a, b = link.a, link.b
        get_label = link.labels.get
        ab = get_label((a, b))
        ba = get_label((b, a))
        key = (ab, ba) if paired else ba
        add_key(key)
        add_origin(ba)
        add_edge((a, b, key))
        key = (ba, ab) if paired else ab
        add_key(key)
        add_origin(ab)
        add_edge((b, a, key))
    for event in getattr(scenario, "events", ()):
        if event.kind == "perturb" and event.label is not None:
            keys.add(_transfer_key(algebra, event.label, event.label))
            origin_labels.add(event.label)
        elif event.kind == "hijack" and event.label is not None:
            # Forged origination: the attacker's pseudo-label enters the
            # origin vocabulary (its forged signature seeds the closure)
            # but adds no transfer key — the hijacked route propagates
            # over the ordinary link vocabulary.
            origin_labels.add(event.label)
    return keys, origin_labels, edges


def _transfer_vocab(scenario: "Scenario") -> tuple[set, set]:
    """``(transfer keys, origin labels)`` of :func:`_scan_topology`."""
    keys, origin_labels, _edges = _scan_topology(scenario)
    return keys, origin_labels


def _patch_edges(scenario: "Scenario", edges: list,
                 events: Iterable["ResolvedEvent"]) -> list:
    """Re-derive the edge list after the event mask was applied: failed
    links drop out, perturbed links pick up their final-label key."""
    network = scenario.network  # already carries the final topology
    algebra = scenario.algebra
    paired = isinstance(algebra, ExtendedAlgebra)
    touched = set()
    for event in events:
        if event.kind == "hijack":
            continue  # no link behind a forged origination
        touched.add((event.a, event.b))
        touched.add((event.b, event.a))
    patched = []
    for u, v, key in edges:
        if (u, v) in touched:
            if not network.has_link(u, v):
                continue
            out_label = network.label(u, v)
            in_label = network.label(v, u)
            key = (out_label, in_label) if paired else in_label
        patched.append((u, v, key))
    return patched


def _apply_events(network, events: Iterable["ResolvedEvent"],
                  until: float | None) -> None:
    """Fold the event schedule into the topology (final state only).

    The unique stable state is history-independent, so *when* a failure
    fires is irrelevant — only whether it fires within the run budget.
    """
    for event in sorted(events, key=lambda e: e.time):
        if until is not None and event.time > until:
            continue  # the scalar timeline would never reach it either
        if event.kind == "hijack":
            continue  # topology-free; seeded via _Problem.origin_candidates
        if not network.has_link(event.a, event.b):
            continue  # already failed (or never materialized): a no-op
        if event.kind == "fail":
            network.remove_link(event.a, event.b)
        elif event.kind == "perturb":
            network.set_label(event.a, event.b, event.label)
            network.set_label(event.b, event.a, event.label)


class _Problem:
    """One scenario compiled to integer arrays (all destinations)."""

    __slots__ = ("scenario", "kernel", "nodes", "node_index", "dests",
                 "edge_src", "edge_dst", "edge_lab", "state", "hijacks",
                 "origin_cache", "parents")

    def __init__(self, scenario: "Scenario", kernel: _Kernel, edges: list,
                 hijacks: list | None = None):
        self.scenario = scenario
        self.kernel = kernel
        #: Active forged originations as ``(attacker, dest, label)`` —
        #: hijack events whose fire time is within the run budget.
        self.hijacks = list(hijacks or ())
        network = scenario.network
        self.nodes = sorted(network.nodes())
        self.node_index = {node: i for i, node in enumerate(self.nodes)}
        self.dests = list(scenario.destinations)
        # ``edges`` is the (u, v, key) list from _scan_topology (patched
        # for events): v learns from u; the key already encodes u's export
        # over L(u, v) and v's import over L(v, u) — the engines'
        # send/receive convention.
        node_index = self.node_index
        key_id = kernel.key_id
        self.edge_src = _np.asarray(
            [node_index[u] for u, _v, _k in edges], dtype=_np.int64)
        self.edge_dst = _np.asarray(
            [node_index[v] for _u, v, _k in edges], dtype=_np.int64)
        self.edge_lab = _np.asarray(
            [key_id[k] for _u, _v, k in edges], dtype=_np.int64)
        #: Filled by the relaxation: (dest, node) -> ordinal id, plus the
        #: per-(dest, node) witness parent index (see _scatter_state).
        self.state = None
        self.parents = None
        #: dest -> origin_candidates(dest), refreshed by _assemble_group
        #: (ids shift when bounded-hole deepening rebuilds the kernel);
        #: outcome rendering reuses the relaxation's own seed scan.
        self.origin_cache: dict = {}

    def origin_candidates(self, dest: str) -> list[tuple[int, int]]:
        """(node_index, ordinal id) injected by origination at ``dest``."""
        network = self.scenario.network
        kernel = self.kernel
        candidates = []
        for neighbor in network.neighbors(dest):
            label = network.label(neighbor, dest)
            oid = kernel.origin_id[label]
            if oid != kernel.phi_id:
                candidates.append((self.node_index[neighbor], oid))
        for attacker, target, label in self.hijacks:
            # A forged origination is an extra seed at the attacker — no
            # link behind it, competing with anything the attacker learns
            # legitimately, exactly the scalar engines' inject_route.
            if target != dest:
                continue
            oid = kernel.origin_id[label]
            if oid != kernel.phi_id:
                candidates.append((self.node_index[attacker], oid))
        self.origin_cache[dest] = candidates
        return candidates

    # -- outcome rendering ------------------------------------------------------

    def outcome(self) -> ExecutionOutcome:
        routes: dict = {}
        sigs: dict = {}
        kernel = self.kernel
        phi = kernel.phi_id
        ksigs = kernel.sigs
        nodes = self.nodes
        n = len(nodes)
        for di, dest in enumerate(self.dests):
            row = self.state[di]
            ids = row.tolist()
            parent = self.parents[di].tolist()
            dest_idx = self.node_index[dest]
            # Origination overlay: it wins over any witness neighbor
            # when it explains the node's id (parent = destination).
            candidates = self.origin_cache.get(dest)
            if candidates is None:
                candidates = self.origin_candidates(dest)
            for node_idx, oid in candidates:
                if ids[node_idx] == oid:
                    parent[node_idx] = dest_idx
            # One ascending-rank pass builds every path tuple: a witness
            # next hop's id is strictly smaller than its downstream
            # node's (strict monotonicity), so each node's parent path is
            # complete before the node itself is visited.
            paths: list = [None] * n
            paths[dest_idx] = (dest,)
            for sid, i in sorted(zip(ids, range(n))):
                if i == dest_idx:
                    continue
                node = nodes[i]
                if sid == phi:
                    routes[(node, dest)] = None
                    sigs[(node, dest)] = None
                    continue
                pi = parent[i]
                base = paths[pi] if pi >= 0 else None
                if base is None:
                    # Unreachable with a verified kernel.
                    raise RuntimeError(
                        f"no witness next hop for {node}->{dest} at rank "
                        f"{sid}")
                paths[i] = path = (node,) + base
                routes[(node, dest)] = path
                sigs[(node, dest)] = ksigs[sid]
        return ExecutionOutcome(
            backend=BatchBackend.name,
            converged=True,
            stop_reason=StopReason.QUIESCENT,
            routes=routes,
            sigs=sigs,
        )


class VectorizedBatchSession(BatchExecutionSession):
    """All scenarios of one batch relaxed simultaneously.

    The session owns the scenarios it was prepared with (their networks
    are mutated by the event mask), mirroring the scalar contract.
    Scenarios may mix algebras/families: problems are grouped per kernel
    and each group is one flat struct-of-arrays relaxation.
    """

    def __init__(self, scenarios: Iterable["Scenario"]):
        if _np is None:
            raise RuntimeError(
                "the batch backend requires numpy (not installed)")
        self.scenarios = list(scenarios)
        self._event_overrides: dict[int, list] = {}

    def override_events(self, index: int, events: list) -> None:
        """Replace ``scenarios[index]``'s schedule (scalar-adapter hook)."""
        self._event_overrides[index] = list(events)

    def run(self, *, partial: bool = False
            ) -> "list[ExecutionOutcome | None]":
        """Relax every scenario; one outcome per input, index-aligned.

        With ``partial=True`` a kernel group that declines at run time
        (monotone-mode :class:`BatchDeclined`) yields ``None`` for its
        scenarios instead of failing the whole batch — the oracle's
        chunk precompute uses this so one hole-touching scenario cannot
        take the rest of the chunk off the fast path.
        """
        # The run allocates large bursts of short-lived tuples (route
        # paths, per-cell witnesses); cyclic GC passes triggered by the
        # churn cost ~25% of the batch wall time while collecting
        # nothing.  Nothing here creates reference cycles, so pause
        # collection for the duration and restore on the way out.
        paused = gc.isenabled()
        if paused:
            gc.disable()
        try:
            return self._run(partial=partial)
        finally:
            if paused:
                gc.enable()

    def _run(self, *, partial: bool) -> "list[ExecutionOutcome | None]":
        problems = []
        for index, scenario in enumerate(self.scenarios):
            tick = time.perf_counter()
            keys, origin_labels, edges = _scan_topology(scenario)
            tock = time.perf_counter()
            _PHASE_SECONDS["scan"].inc(tock - tick)
            kernel = _kernel_for(scenario.algebra, keys, origin_labels)
            tick = time.perf_counter()
            _PHASE_SECONDS["tabulate"].inc(tick - tock)
            if kernel is None:
                raise ValueError(
                    f"scenario {getattr(scenario.spec, 'scenario_id', '?')} "
                    f"is not batchable (algebra {scenario.algebra.name!r}); "
                    f"callers must filter with BatchBackend.supports()")
            events = self._event_overrides.get(index, scenario.events)
            until = getattr(scenario.spec, "until", None)
            _apply_events(scenario.network, events, until)
            if events:
                edges = _patch_edges(scenario, edges, events)
            hijacks = [(e.a, e.b, e.label) for e in events
                       if e.kind == "hijack" and e.label is not None
                       and (until is None or e.time <= until)]
            problems.append(_Problem(scenario, kernel, edges, hijacks))
            _PHASE_SECONDS["scan"].inc(time.perf_counter() - tick)
        groups: dict[int, list[_Problem]] = {}
        for problem in problems:
            groups.setdefault(id(problem.kernel), []).append(problem)
        declined: set[int] = set()
        tick = time.perf_counter()
        for gid, group in groups.items():
            try:
                _relax_group(group)
            except BatchDeclined:
                _KERNEL_EVENTS["runtime_declines"].inc()
                if not partial:
                    raise
                declined.add(gid)
        tock = time.perf_counter()
        _PHASE_SECONDS["relax"].inc(tock - tick)
        outcomes = [
            None if id(problem.kernel) in declined else problem.outcome()
            for problem in problems]
        _PHASE_SECONDS["render"].inc(time.perf_counter() - tock)
        return outcomes


class _HoleTouch(Exception):
    """Internal: a Jacobi transient read a hole entry.

    Carries the offending ``(key_id, sig_id)`` cells so bounded-hole
    deepening can extend the closure along exactly those rows before the
    group is restarted.
    """

    def __init__(self, offending: set):
        super().__init__("transient value crossed the closure horizon")
        self.offending = offending


def _assemble_group(group: list["_Problem"]):
    """Stack one kernel's scenarios into flat struct-of-arrays form.

    Returns ``(seeds, src, dst, lab, blocks)`` where the arrays span
    every (scenario, destination, node) cell of the group and ``blocks``
    records each destination copy's flat offset for the scatter-back.
    Re-run after a deepening restart: signature ids shift when the
    closure grows, so the origin seeds must be re-read from the kernel.
    """
    kernel = group[0].kernel
    phi = kernel.phi_id
    src_parts, dst_parts, lab_parts = [], [], []
    orig_pos, orig_val = [], []
    blocks = []  # (problem, dest index, flat offset)
    offset = 0
    for problem in group:
        width = len(problem.nodes)
        for di, dest in enumerate(problem.dests):
            blocks.append((problem, di, offset))
            dest_idx = problem.node_index[dest]
            # The destination neither originates from others nor transits
            # its own routes: drop every edge touching it in this copy.
            keep = (problem.edge_src != dest_idx) \
                & (problem.edge_dst != dest_idx)
            src_parts.append(problem.edge_src[keep] + offset)
            dst_parts.append(problem.edge_dst[keep] + offset)
            lab_parts.append(problem.edge_lab[keep])
            for node_idx, oid in problem.origin_candidates(dest):
                orig_pos.append(offset + node_idx)
                orig_val.append(oid)
            offset += width
    seeds = _np.full(offset, phi, dtype=_np.int32)
    if orig_pos:
        _np.minimum.at(seeds, _np.asarray(orig_pos, dtype=_np.int64),
                       _np.asarray(orig_val, dtype=_np.int32))
    if src_parts:
        src = _np.concatenate(src_parts)
        dst = _np.concatenate(dst_parts)
        lab = _np.concatenate(lab_parts)
    else:
        src = dst = lab = _np.empty(0, dtype=_np.int64)
    return seeds, src, dst, lab, blocks


def _scatter_state(blocks: list, state, src, dst, lab, kernel) -> None:
    """Scatter the flat fixpoint back per problem, with witness parents.

    The witness test — which neighbor's current route explains each
    node's id — runs once, vectorized over the *whole group's* edge
    arrays (they already exclude destination-touching edges per copy),
    instead of once per (problem, destination) in the rendering loop.
    ``parents[di][i]`` is the local index of node ``i``'s next hop, or
    ``-1`` (no witness: φ nodes, and origination-explained nodes the
    rendering pass overlays).  Tie-break: smallest ``(id, src index)``;
    global src order within one copy equals local (hence name) order, so
    it matches the old per-edge scan exactly.
    """
    ncells = state.size
    top = _np.iinfo(_np.int64).max
    best = _np.full(ncells, top, dtype=_np.int64)
    if src.size:
        witness = _np.flatnonzero(
            (state[dst] != kernel.phi_id)
            & (kernel.trans[lab, state[src]] == state[dst]))
        if witness.size:
            wsrc = src[witness]
            _np.minimum.at(best, dst[witness],
                           state[wsrc].astype(_np.int64) * ncells + wsrc)
    parent = _np.where(best == top, _np.int64(-1), best % ncells)
    for problem, di, off in blocks:
        width = len(problem.nodes)
        if problem.state is None:
            problem.state = _np.empty((len(problem.dests), width),
                                      dtype=_np.int32)
            problem.parents = _np.empty((len(problem.dests), width),
                                        dtype=_np.int64)
        problem.state[di] = state[off:off + width]
        block = parent[off:off + width]
        problem.parents[di] = _np.where(block < 0, block, block - off)


def _relax_isotone_frontier(kernel: "_Kernel", seeds, src, dst, lab):
    """Frontier-driven accumulating min-relaxation (exact).

    State only ever improves and each ⊕ strictly increases the rank, so
    an edge's offer changes only when its source cell's state changed —
    relaxing just the adjacency of last round's improved cells reaches
    the same unique fixpoint as the dense sweep, with the expensive
    scatter confined to O(Σ changed-adjacency) edges.  Cells seeded at φ
    start outside the frontier: their offers are ``trans[:, φ] == φ``
    (the absorbing column) and can never win a min.  Hole entries rank
    above φ, so ``minimum.at`` silently discards them.
    """
    state = seeds.copy()
    if src.size == 0:
        _note_rounds(0)
        return state
    trans = kernel.trans
    phi = kernel.phi_id
    ncells = state.size
    # Frontier selection is one boolean gather over the source column —
    # O(E) per round but branch-free and allocation-light, which beats
    # building a CSR index (argsort + bincount) on the 2–4 round
    # fixpoints these sparse graphs converge in.  The expensive part of
    # a round is ``minimum.at`` (a buffered scatter), and that runs only
    # over the selected edges; once a round would touch most of the edge
    # list anyway, the plain dense sweep skips the selection too.
    dense_cut = src.size // 2
    mask = _np.zeros(ncells, dtype=bool)
    active = _np.flatnonzero(state != phi)
    rounds = 0
    budget = ncells * (phi + 2) + 1  # ≥1 cell strictly improves per round
    while active.size:
        rounds += 1
        if rounds > budget:  # pragma: no cover - verified-kernel invariant
            raise RuntimeError("batch relaxation failed to reach fixpoint")
        _PHASE_EVENTS["frontier_cells"].inc(int(active.size))
        _PHASE_EVENTS["frontier_rounds"].inc()
        mask[:] = False
        mask[active] = True
        edge_sel = mask[src]
        before = state.copy()
        if int(_np.count_nonzero(edge_sel)) > dense_cut:
            _np.minimum.at(state, dst, trans[lab, state[src]])
        else:
            sel = _np.flatnonzero(edge_sel)
            _np.minimum.at(state, dst[sel],
                           trans[lab[sel], state[src[sel]]])
        active = _np.flatnonzero(state < before)
    _note_rounds(rounds)
    return state


def _relax_jacobi_frontier(kernel: "_Kernel", seeds, src, dst, lab):
    """Frontier-driven synchronous Jacobi iteration.

    Semantically the dense v1 Jacobi — every node simultaneously
    re-selects the best of its neighbors' *current* routes each round —
    but each round only recomputes the offers of edges whose source cell
    changed last round, against a cached per-edge offer array whose
    invariant (``vals[e] == trans[lab[e], state[src[e]]]`` at all times)
    makes the two provably identical round for round.  Hole entries are
    checked exactly when an offer is (re)computed, which covers every
    hole the dense sweep would see; a touch raises :class:`_HoleTouch`
    with the offending cells so the caller can deepen and restart.

    Hazard-mode kernels additionally verify, every round including the
    settling one, that no preference tie between behaviorally distinct
    signatures (``tie_class``) competes at any node — the only situation
    where the batch fixpoint could diverge from the scalar engines'
    arrival-order tie-break.  Ambiguity raises :class:`BatchDeclined`
    (conservative: transient ties decline too; never a wrong answer).
    """
    state = seeds.copy()
    if src.size == 0:
        _note_rounds(0)
        return state
    trans = kernel.trans
    phi = kernel.phi_id
    hole = kernel.hole_id
    ncells = state.size
    # Cached offers: a φ-state source offers trans[lab, φ] == φ (the
    # absorbing column), so initializing to φ satisfies the invariant
    # for every not-yet-recomputed edge.
    vals = _np.full(src.size, phi, dtype=_np.int32)
    changed = _np.flatnonzero(state != phi)
    mask = _np.zeros(ncells, dtype=bool)
    hazard = kernel.hazard
    tie = kernel.tie_class
    pc = kernel.pref_class
    round_budget = _MONOTONE_ROUND_SLACK * (phi + 2) + MAX_NODES
    dense_cut = src.size // 2
    for _round in range(round_budget):
        if changed.size:
            _PHASE_EVENTS["frontier_cells"].inc(int(changed.size))
            _PHASE_EVENTS["frontier_rounds"].inc()
            # Stale-offer selection by boolean source mask (see
            # _relax_isotone_frontier for why this beats a CSR index).
            mask[:] = False
            mask[changed] = True
            edge_sel = mask[src]
            if int(_np.count_nonzero(edge_sel)) > dense_cut:
                # Most offers are stale anyway: recompute them all in one
                # dense gather instead of assembling the selection.
                new_vals = trans[lab, state[src]]
                holes = new_vals == hole
                if bool(holes.any()):
                    raise _HoleTouch(set(zip(
                        lab[holes].tolist(),
                        state[src[holes]].tolist())))
                vals = new_vals
            else:
                sel = _np.flatnonzero(edge_sel)
                if sel.size:
                    new_vals = trans[lab[sel], state[src[sel]]]
                    holes = new_vals == hole
                    if bool(holes.any()):
                        raise _HoleTouch(set(zip(
                            lab[sel][holes].tolist(),
                            state[src[sel]][holes].tolist())))
                    vals[sel] = new_vals
        fresh = seeds.copy()
        _np.minimum.at(fresh, dst, vals)
        if hazard:
            # A losing offer preference-tied with the winner but in a
            # different tie class means the scalar engines could have
            # kept the other route — the batch answer is not unique up
            # to preference-equality and must not be trusted.
            fresh_d = fresh[dst]
            ambiguous = (pc[vals] == pc[fresh_d]) \
                & (tie[vals] != tie[fresh_d])
            seed_amb = (pc[seeds] == pc[fresh]) & (tie[seeds] != tie[fresh])
            if bool(ambiguous.any()) or bool(seed_amb.any()):
                _PHASE_EVENTS["hazard_declines"].inc()
                raise BatchDeclined(
                    "preference tie between behaviorally distinct "
                    "routes; falling back to scalar engines")
        changed = _np.flatnonzero(fresh != state)
        if changed.size == 0:
            _note_rounds(_round + 1)
            return fresh
        state = fresh
    raise BatchDeclined(
        "Jacobi iteration did not settle within the round budget; "
        "falling back to scalar engines")


def _relax_group(group: list["_Problem"]) -> None:
    """Relax one kernel's scenarios over flat struct-of-arrays state.

    The v2 engine: frontier-driven sparse rounds over the fused group
    (:func:`_relax_isotone_frontier` / :func:`_relax_jacobi_frontier`),
    with bounded-hole closure deepening — a monotone-mode hole-touch
    deepens the kernel along just the offending rows
    (:func:`_deepen_kernel`) and restarts the group, declining to scalar
    only when the depth cap or attempt budget is exhausted.  Setting
    ``$REPRO_BATCH_DENSE`` dispatches to the dense v1 engine instead
    (:func:`_relax_group_dense`) — the differential oracle for engine
    equivalence tests.
    """
    if os.environ.get(DENSE_RELAX_ENV):
        return _relax_group_dense(group)
    kernel = group[0].kernel
    for attempt in range(_MAX_DEEPEN_ATTEMPTS + 1):
        seeds, src, dst, lab, blocks = _assemble_group(group)
        _PHASE_EVENTS["state_cells"].inc(int(seeds.size))
        try:
            if kernel.mode == "isotone":
                state = _relax_isotone_frontier(kernel, seeds, src, dst, lab)
            else:
                state = _relax_jacobi_frontier(kernel, seeds, src, dst, lab)
        except _HoleTouch as touch:
            if attempt >= _MAX_DEEPEN_ATTEMPTS \
                    or not _deepen_kernel(kernel, touch.offending):
                raise BatchDeclined(
                    "transient value crossed the closure depth horizon "
                    "and deepening is exhausted; falling back to scalar "
                    "engines") from None
            continue  # deepened in place: reassemble (ids shifted), retry
        _scatter_state(blocks, state, src, dst, lab, kernel)
        return


def _relax_group_dense(group: list["_Problem"]) -> None:
    """The dense v1 relaxation, kept as the engine-equivalence oracle.

    Identical to the pre-frontier engine — full-edge sweeps, no
    deepening (a hole-touch declines outright) — except that hazard-mode
    kernels get the same per-round tie-ambiguity check as the frontier
    Jacobi, so the dense↔frontier differential is meaningful on the
    deployed-secure families too.
    """
    kernel = group[0].kernel
    phi = kernel.phi_id
    hole = kernel.hole_id
    seeds, src, dst, lab, blocks = _assemble_group(group)
    _PHASE_EVENTS["state_cells"].inc(int(seeds.size))
    state = seeds.copy()
    if src.size:
        trans = kernel.trans
        if kernel.mode == "isotone":
            # Ranks only ever improve, and each ⊕ strictly increases the
            # rank, so the accumulating iteration reaches the unique
            # fixpoint in at most |Σ| rounds; the +2 cap is a pure safety
            # net.  Hole entries rank above φ, so minimum.at silently
            # discards them.
            for _round in range(phi + 2):
                before = state.copy()
                _np.minimum.at(state, dst, trans[lab, state[src]])
                if _np.array_equal(before, state):
                    break
            else:  # pragma: no cover - unreachable with a verified kernel
                raise RuntimeError(
                    "batch relaxation failed to reach fixpoint")
        else:
            hazard = kernel.hazard
            tie = kernel.tie_class
            pc = kernel.pref_class
            rounds = _MONOTONE_ROUND_SLACK * (phi + 2) + MAX_NODES
            for _round in range(rounds):
                vals = trans[lab, state[src]]
                if bool((vals == hole).any()):
                    raise BatchDeclined(
                        "transient value crossed the closure depth "
                        "horizon; falling back to scalar engines")
                fresh = seeds.copy()
                _np.minimum.at(fresh, dst, vals)
                if hazard:
                    fresh_d = fresh[dst]
                    ambiguous = (pc[vals] == pc[fresh_d]) \
                        & (tie[vals] != tie[fresh_d])
                    seed_amb = (pc[seeds] == pc[fresh]) \
                        & (tie[seeds] != tie[fresh])
                    if bool(ambiguous.any()) or bool(seed_amb.any()):
                        _PHASE_EVENTS["hazard_declines"].inc()
                        raise BatchDeclined(
                            "preference tie between behaviorally "
                            "distinct routes; falling back to scalar "
                            "engines")
                if _np.array_equal(fresh, state):
                    _note_rounds(_round + 1)
                    break
                state = fresh
            else:
                raise BatchDeclined(
                    "Jacobi iteration did not settle within the round "
                    "budget; falling back to scalar engines")
    _scatter_state(blocks, state, src, dst, lab, kernel)


class BatchSession(ExecutionSession):
    """Scalar adapter: one scenario through the vectorized kernel.

    Keeps the batch backend usable through the ordinary
    ``prepare / schedule_events / run`` lifecycle (conformance suite,
    single-scenario oracle fallback).  There is no simulator: the event
    schedule arrives wholesale via :meth:`schedule` and is folded into
    the final topology before one batch-of-one relaxation.
    """

    def __init__(self, scenario: "Scenario", *, seed: int = 0,
                 log_routes: bool = False):
        if log_routes:
            raise ValueError(
                "the batch backend computes fixpoints, not advertisement "
                "logs; prepare a scalar backend for route logging")
        self.scenario = scenario
        self.algebra = scenario.algebra
        self.destinations = list(scenario.destinations)
        self.route_log: list = []
        self._events: list | None = None
        self._table: tuple[dict, dict] | None = None

    @property
    def network(self):
        return self.scenario.network

    def schedule(self, events: list) -> None:
        """Receive the pre-run schedule (via ``schedule_events``)."""
        self._events = list(events)

    def apply_event(self, event: "ResolvedEvent") -> None:
        """Immediate application (the final topology is all that matters)."""
        _apply_events(self.scenario.network, [event], None)

    def run(self, until: float | None = None,
            max_events: int | None = None) -> ExecutionOutcome:
        inner = VectorizedBatchSession([self.scenario])
        if self._events is not None:
            inner.override_events(0, self._events)
        outcome = inner.run()[0]
        self._table = (outcome.routes, outcome.sigs)
        return outcome

    def route_table(self) -> tuple[dict, dict]:
        if self._table is None:
            raise RuntimeError("route_table() before run()")
        return self._table


class BatchBackend(ExecutionBackend):
    """The vectorized fixpoint backend (``batch``)."""

    name = "batch"

    def supports(self, scenario: "Scenario") -> bool:
        """Batchable = the fixpoint shortcut provably equals the engines.

        A scenario is batchable when every one of these holds:

        * numpy is importable;
        * single-path selection (``top_k == 1``) without route logging —
          the kernel has no advertisement stream to log;
        * the analysis subject is known up front (iBGP-style post-run
          extraction needs a scalar primary backend);
        * the algebra is rank-tabulable: not path-valued (SPP gadgets),
          not the domain-path HLP cost algebra, and its reachable
          signature closure over the scenario's directed transfer
          vocabulary is within budget and **verified strictly monotonic**
          (non-strict draws like plain Gao-Rexford fall back to the
          scalar engines);
        * the rank tables pass the hole-aware gate: isotone in
          preference space (exact min-relaxation) or at least
          tie-respecting (Jacobi iteration — which may still decline
          *at run time* with :class:`BatchDeclined` if a transient
          crosses the closure depth horizon);
        * the topology is within the node budget.
        """
        if _np is None:
            return False
        if getattr(scenario, "top_k", 1) != 1:
            return False
        if getattr(scenario, "log_routes", False):
            return False
        if getattr(scenario, "analysis_subject", "missing") is None:
            return False
        algebra = scenario.algebra
        if isinstance(algebra, (SPPAlgebra, HLPCostAlgebra)):
            return False
        if scenario.network.node_count() > MAX_NODES:
            return False
        keys, origin_labels = _transfer_vocab(scenario)
        if None in origin_labels:
            return False
        return _kernel_for(algebra, keys, origin_labels) is not None

    def prepare(self, scenario: "Scenario", *, seed: int = 0,
                log_routes: bool = False) -> BatchSession:
        return BatchSession(scenario, seed=seed, log_routes=log_routes)

    def prepare_batch(self, scenarios: Iterable["Scenario"]
                      ) -> VectorizedBatchSession:
        return VectorizedBatchSession(scenarios)
