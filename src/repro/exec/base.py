"""Execution-backend contract for differential campaigns.

FSR has two operational halves that must agree: the *native* GPV engine
(:mod:`repro.protocols.gpv`) and the *generated* NDlog program executed on
the NDlog runtime (:mod:`repro.ndlog`) — the paper's actual implementation
path.  An :class:`ExecutionBackend` abstracts "run this scenario and tell
me what the routing system did" so the campaign oracle can execute the same
seeded scenario on N independent implementations and cross-check them
pairwise.

The lifecycle is three calls:

1. ``backend.prepare(scenario, seed=..., log_routes=...)`` builds an
   :class:`ExecutionSession` — engine state wired to a fresh seeded
   :class:`~repro.net.simulator.Simulator` (exposed as ``session.sim``);
2. the caller schedules the spec's perturbation schedule on ``session.sim``
   via :func:`schedule_events` / ``session.apply_event`` — events mean the
   same thing to every backend because every backend executes the *same*
   pre-scheduled simulator timeline;
3. ``session.run(until=..., max_events=...)`` drains the simulator and
   returns an :class:`ExecutionOutcome`: converged/diverged status, the
   final best-route table, and message/byte statistics.

Backends never see campaign types: a "scenario" is anything with
``network`` / ``algebra`` / ``destinations`` attributes, and an "event" is
anything with ``kind`` / ``a`` / ``b`` / ``label`` / ``time`` — so the
layer has no import cycle with :mod:`repro.campaigns`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from ..algebra.base import Pref, RoutingAlgebra
from ..net.simulator import Simulator, StopReason

if TYPE_CHECKING:  # only for annotations; no runtime campaign dependency
    from ..campaigns.scenarios import ResolvedEvent, Scenario


@dataclass
class ExecutionOutcome:
    """What one backend did with one scenario (picklable, worker → parent).

    ``routes`` / ``sigs`` map ``(node, dest)`` to the selected best path /
    signature (``None`` where the node holds no route) — the raw material
    for cross-backend route-table comparison.
    """

    backend: str
    converged: bool
    stop_reason: str
    messages: int = 0
    bytes_sent: int = 0
    sim_time_s: float = 0.0
    routes: dict = field(default_factory=dict)
    sigs: dict = field(default_factory=dict)
    #: Multipath outcomes only (``top_k > 1``): ``(node, dest)`` → ranked
    #: tuple of selected ``(sig, path)`` routes, best first, capped at k.
    route_sets: dict = field(default_factory=dict)
    #: Set when ``stop_reason == "error"``: the exception that killed this
    #: scenario's run, so a batched caller can tell *which* member failed
    #: and why instead of losing the whole batch.
    error: str | None = None

    def to_dict(self) -> dict:
        """JSON-safe rendering (route tables are summarized, not dumped)."""
        held = sum(1 for path in self.routes.values() if path is not None)
        record = {
            "backend": self.backend,
            "converged": self.converged,
            "stop_reason": self.stop_reason,
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "sim_time_s": self.sim_time_s,
            "routes_held": held,
            "route_pairs": len(self.routes),
        }
        if self.route_sets:
            record["multipath_routes"] = sum(
                len(routes) for routes in self.route_sets.values())
        if self.error is not None:
            record["error"] = self.error
        return record


class ExecutionSession(ABC):
    """One prepared scenario on one backend, ready to run.

    Concrete sessions expose ``sim`` (the seeded simulator driving the
    run), ``network`` / ``algebra`` / ``destinations`` (the scenario
    artifacts, owned by this session — backends must not share a mutable
    network), and ``route_log`` (accepted non-φ routes as
    ``(node, dest, sig, path)``, populated when prepared with
    ``log_routes=True`` — the input to the paper's Sec. VI-B SPP
    extraction).
    """

    sim: Simulator
    algebra: RoutingAlgebra
    destinations: list
    route_log: list

    @property
    def network(self):
        return self.sim.network

    @abstractmethod
    def apply_event(self, event: "ResolvedEvent") -> None:
        """Apply one resolved topology event at the current sim time."""

    @abstractmethod
    def run(self, until: float | None = None,
            max_events: int | None = None) -> ExecutionOutcome:
        """Start the protocol, drain the simulator, snapshot the outcome."""

    # -- shared helpers -------------------------------------------------------

    def _outcome(self, name: str, reason: str) -> ExecutionOutcome:
        routes, sigs = self.route_table()
        return ExecutionOutcome(
            backend=name,
            converged=reason == StopReason.QUIESCENT,
            stop_reason=reason,
            messages=self.sim.stats.messages_sent,
            bytes_sent=self.sim.stats.bytes_sent_total,
            sim_time_s=self.sim.now,
            routes=routes,
            sigs=sigs,
            route_sets=self.route_sets(),
        )

    @abstractmethod
    def route_table(self) -> tuple[dict, dict]:
        """``(routes, sigs)`` keyed ``(node, dest)`` over all pairs."""

    def route_sets(self) -> dict:
        """Top-k selected route sets per ``(node, dest)`` (multipath only).

        Single-path sessions return ``{}`` — the best-route table already
        carries everything comparable.
        """
        return {}


class BatchExecutionSession(ABC):
    """Many prepared scenarios executed as one unit (vectorized or not).

    The batched counterpart of :class:`ExecutionSession`:
    ``backend.prepare_batch(scenarios)`` builds one, and :meth:`run`
    executes *every* scenario — applying each scenario's own event
    schedule — and returns one :class:`ExecutionOutcome` per input
    scenario, index-aligned with ``scenarios``.

    Backends with a struct-of-arrays fast path (the ``batch`` backend's
    numpy relaxation kernel) override ``prepare_batch`` to return a truly
    vectorized session; every other backend inherits a sequential
    adapter, so callers can *always* go through the batched entry point.
    """

    scenarios: list

    @abstractmethod
    def run(self, *, partial: bool = False
            ) -> "list[ExecutionOutcome | None]":
        """Execute all scenarios; ``outcomes[i]`` belongs to
        ``scenarios[i]``.

        With ``partial=True`` a backend *may* yield ``None`` for
        scenarios it discovers at run time it cannot execute (e.g. the
        batch backend's run-time declines), instead of failing the whole
        batch; the caller re-runs those members through a scalar
        backend.  Backends without that failure mode simply ignore the
        flag — a sequential session already isolates per-scenario
        errors as index-aligned ERROR outcomes.
        """


class _SequentialBatchSession(BatchExecutionSession):
    """Default batched path: scalar sessions, one scenario at a time."""

    def __init__(self, backend: "ExecutionBackend", scenarios: list):
        self.backend = backend
        self.scenarios = list(scenarios)

    def run(self, *, partial: bool = False) -> list[ExecutionOutcome]:
        outcomes = []
        for scenario in self.scenarios:
            spec = getattr(scenario, "spec", None)
            try:
                session = self.backend.prepare(
                    scenario, seed=getattr(spec, "seed", 0),
                    log_routes=getattr(scenario, "log_routes", False))
                schedule_events(session, scenario.events)
                outcomes.append(session.run(
                    until=getattr(spec, "until", None),
                    max_events=getattr(spec, "max_events", None)))
            except Exception as error:  # noqa: BLE001
                # One broken scenario must not take down the other N-1:
                # surface it as an index-aligned ERROR outcome so the
                # caller sees *which* member failed and why.
                outcomes.append(ExecutionOutcome(
                    backend=self.backend.name,
                    converged=False,
                    stop_reason="error",
                    error=f"{type(error).__name__}: {error}",
                ))
        return outcomes


class ExecutionBackend(ABC):
    """Factory for :class:`ExecutionSession`s; stateless and reusable."""

    #: Registry / CLI name (``--backends gpv,ndlog,hlp,batch``).
    name: str = "backend"

    def supports(self, scenario: "Scenario") -> bool:
        """Can this backend execute the scenario?

        The generic backends run any algebra over any network, so the
        default is True.  Protocol-specific backends (HLP needs
        domain-annotated topologies and the HLP cost algebra for its
        outcome to be comparable) override this; the campaign oracle skips
        non-supporting backends per scenario, so one ``--backends`` list
        can span heterogeneous families.
        """
        return True

    @abstractmethod
    def prepare(self, scenario: "Scenario", *, seed: int = 0,
                log_routes: bool = False) -> ExecutionSession:
        """Build a session for the scenario (which this session then owns)."""

    def prepare_batch(self, scenarios: Iterable["Scenario"]
                      ) -> BatchExecutionSession:
        """Build one batched session over many scenarios.

        Each scenario must already be supported (callers filter with
        :meth:`supports`).  The default adapter prepares and runs scalar
        sessions sequentially — backends with a genuinely vectorized path
        override this.
        """
        return _SequentialBatchSession(self, list(scenarios))


def schedule_events(session: ExecutionSession,
                    events: Iterable["ResolvedEvent"]) -> None:
    """Pre-schedule a spec's event schedule on the session's simulator.

    Scheduling happens *before* the run, at sim time 0, so the failure /
    perturbation timeline is identical for every backend evaluating the
    same spec — the property the differential oracle depends on.

    Sessions without a simulator of their own (the ``batch`` backend
    computes the converged table of the *final* topology directly, so
    there is no timeline to schedule on) expose ``schedule(events)``
    instead, and receive the schedule wholesale.
    """
    schedule = getattr(session, "schedule", None)
    if schedule is not None:
        schedule(list(events))
        return
    for event in events:
        session.sim.at(event.time, lambda e=event: session.apply_event(e))


def route_mismatches(algebra: RoutingAlgebra, first: ExecutionOutcome,
                     second: ExecutionOutcome,
                     limit: int = 8) -> list[str]:
    """Where two converged outcomes disagree, up to algebra-equivalence.

    Implementations may legitimately settle on *different but equally
    preferred* routes when the algebra declares ties (stickiness makes the
    pick arrival-order dependent), so two selections only count as a
    mismatch when one node holds a route the other lacks, or the selected
    signatures are not preference-EQUAL under the algebra.
    """
    mismatches: list[str] = []
    for key in sorted(set(first.routes) | set(second.routes)):
        node, dest = key
        p1, p2 = first.routes.get(key), second.routes.get(key)
        if (p1 is None) != (p2 is None):
            mismatches.append(
                f"{node}->{dest}: {first.backend}={p1} {second.backend}={p2}")
        elif p1 is not None and p1 != p2:
            s1, s2 = first.sigs.get(key), second.sigs.get(key)
            if s1 is None or s2 is None:
                # A backend reported a route without its signature: the
                # tables cannot be proven equivalent, so report a mismatch
                # instead of crashing the oracle on the missing key.
                mismatches.append(
                    f"{node}->{dest}: signature missing "
                    f"{first.backend}={p1}({s1}) {second.backend}={p2}({s2})")
            elif algebra.preference(s1, s2) is not Pref.EQUAL:
                mismatches.append(
                    f"{node}->{dest}: {first.backend}={p1}({s1}) "
                    f"{second.backend}={p2}({s2})")
        if len(mismatches) >= limit:
            break
    return mismatches


def route_set_mismatches(algebra: RoutingAlgebra, first: ExecutionOutcome,
                         second: ExecutionOutcome,
                         limit: int = 8) -> list[str]:
    """Where two converged multipath outcomes' k-best *sets* disagree.

    Strict rank-wise comparison: both backends must hold the same number
    of routes per ``(node, dest)`` and the signatures at each rank must
    be preference-EQUAL (paths may differ — ties are real, and stickiness
    makes the tied pick arrival-order dependent).  This flags dropped or
    extra k-best entries, wrong ranking order, and strictly-worse
    alternates alike.  Empirically the stable k-best sets match at this
    granularity across every campaign family (ordered per-link transport
    plus tie-refined algebras make the stable state unique); if a
    scenario ever surfaces a genuine tie-margin ambiguity, the oracle
    should flag it for human eyes rather than silently absorb it.
    """
    mismatches: list[str] = []
    for key in sorted(set(first.route_sets) | set(second.route_sets)):
        node, dest = key
        routes1 = first.route_sets.get(key, ())
        routes2 = second.route_sets.get(key, ())
        if len(routes1) != len(routes2):
            mismatches.append(
                f"{node}->{dest}: {first.backend} holds {len(routes1)} "
                f"routes, {second.backend} holds {len(routes2)}")
        elif any(algebra.preference(sig1, sig2) is not Pref.EQUAL
                 for (sig1, _p1), (sig2, _p2) in zip(routes1, routes2)):
            render1 = [str(sig) for sig, _path in routes1]
            render2 = [str(sig) for sig, _path in routes2]
            mismatches.append(
                f"{node}->{dest}: k-best sets diverge "
                f"{first.backend}={render1} {second.backend}={render2}")
        if len(mismatches) >= limit:
            break
    return mismatches
